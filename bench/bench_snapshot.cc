// Snapshot persistence bench: save/load round trip on the GovTrack and
// Wikipedia histories. Measures cold ingest (TemporalGraph::Load: four
// index descents + structure changes per triple) against snapshot load
// (one sequential checksummed read, leaves restored in their on-disk
// delta-encoded form), verifies the loaded store answers a full scan
// and a query workload byte-identically, and runs the deep structural
// validator on the restored forest.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "analysis/invariants.h"
#include "bench_common.h"
#include "storage/snapshot.h"
#include "temporal/temporal_set.h"
#include "workload/query_gen.h"

namespace {

using namespace rdftx;
using namespace rdftx::bench;

// Canonical fingerprint of the complete store contents: every triple's
// coalesced validity from a full SPO scan.
std::string FullScanFingerprint(const TemporalGraph& g) {
  std::map<Triple, std::vector<Interval>> raw;
  g.ScanPattern(PatternSpec{}, [&](const Triple& t, const Interval& iv) {
    raw[t].push_back(iv);
  });
  std::string out;
  for (auto& [t, ivs] : raw) {
    TemporalSet set = TemporalSet::FromIntervals(ivs);
    out += std::to_string(t.s) + "," + std::to_string(t.p) + "," +
           std::to_string(t.o) + ":" + set.ToString() + "\n";
  }
  return out;
}

std::string SortedResults(const engine::QueryEngine& eng,
                          const std::vector<std::string>& queries) {
  std::string out;
  for (const std::string& q : queries) {
    auto r = eng.Execute(q);
    if (!r.ok()) {
      std::fprintf(stderr, "query failed: %s\n%s\n",
                   r.status().ToString().c_str(), q.c_str());
      std::abort();
    }
    std::vector<std::string> rows;
    for (const auto& row : r->rows) {
      std::string fp;
      for (const engine::Cell& cell : row) cell.AppendFingerprint(&fp);
      rows.push_back(std::move(fp));
    }
    std::sort(rows.begin(), rows.end());
    for (const std::string& fp : rows) out += fp + "\n";
    out += "--\n";
  }
  return out;
}

void RunOne(const char* label, Fixture f, JsonReport* report) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("rdftx_bench_snapshot_" + std::string(label) + ".rtxsnap"))
          .string();

  TemporalGraph original(TemporalGraphOptions{.compress_leaves = true});
  // A failed load makes the SaveSnapshot below abort with the real error.
  const double ingest_s =
      // status-ignored: timing only, failure surfaces in SaveSnapshot.
      TimeSeconds([&] { original.Load(f.data.triples).IgnoreError(); });

  const double save_s = TimeSeconds([&] {
    Status st = original.SaveSnapshot(path, f.dict.get());
    if (!st.ok()) {
      std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
      std::abort();
    }
  });
  const uint64_t file_bytes = std::filesystem::file_size(path);

  TemporalGraph loaded;
  Dictionary loaded_dict;
  const double load_s = TimeSeconds([&] {
    Status st = loaded.LoadSnapshot(path, &loaded_dict);
    if (!st.ok()) {
      std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
      std::abort();
    }
  });

  // Correctness gates: the loaded store must be indistinguishable.
  if (FullScanFingerprint(loaded) != FullScanFingerprint(original)) {
    std::fprintf(stderr, "%s: loaded scan differs from original\n", label);
    std::abort();
  }
  for (int i = 0; i < 4; ++i) {
    Status st = analysis::ValidateMvbt(loaded.index(static_cast<IndexOrder>(i)));
    if (!st.ok()) {
      std::fprintf(stderr, "%s: ValidateMvbt: %s\n", label,
                   st.ToString().c_str());
      std::abort();
    }
  }
  Rng rng(77);
  auto queries = workload::MakeSelectionQueries(f.data, *f.dict, 10, &rng);
  auto joins = workload::MakeJoinQueries(f.data, *f.dict, 5, &rng);
  queries.insert(queries.end(), joins.begin(), joins.end());
  engine::QueryEngine eng_orig(&original, f.dict.get());
  engine::QueryEngine eng_loaded(&loaded, &loaded_dict);
  if (SortedResults(eng_orig, queries) != SortedResults(eng_loaded, queries)) {
    std::fprintf(stderr, "%s: query results differ after load\n", label);
    std::abort();
  }

  const double speedup = ingest_s / load_s;
  PrintSeriesHeader(std::string("Snapshot round trip: ") + label,
                    {"triples", "ingest_s", "save_s", "load_s", "speedup",
                     "file_MB"});
  PrintSeriesRow({std::to_string(f.data.triples.size()), Fmt(ingest_s),
                  Fmt(save_s), Fmt(load_s), Fmt(speedup),
                  Fmt(static_cast<double>(file_bytes) / (1024.0 * 1024.0))});
  std::printf("\n");

  const std::string prefix = label;
  report->Add(prefix + "_triples",
              static_cast<uint64_t>(f.data.triples.size()));
  report->Add(prefix + "_ingest_seconds", ingest_s);
  report->Add(prefix + "_save_seconds", save_s);
  report->Add(prefix + "_load_seconds", load_s);
  report->Add(prefix + "_load_speedup", speedup);
  report->Add(prefix + "_file_bytes", file_bytes);
  std::filesystem::remove(path);
}

}  // namespace

int main() {
  JsonReport report("snapshot");
  RunOne("govtrack", MakeGovTrack(Scaled(120000)), &report);
  RunOne("wikipedia", MakeWikipedia(Scaled(120000)), &report);
  report.Write();
  return 0;
}
