// Ablation: delta-encoding internals (paper §4.2.1). Reports the header
// and te-rule mix of the compressor on real workload data, the
// compression ratio across block capacities, and the query-time cost of
// decompression (the paper includes decompression in query times and
// reports compressed scans staying competitive).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"

namespace {

using namespace rdftx;
using namespace rdftx::bench;

void BM_ScanStandard(benchmark::State& state) {
  static Fixture f = MakeWikipedia(Scaled(60000));
  static auto store = BuildStore(System::kStandardMvbt, f);
  TermId pred = f.dict->Lookup("population");
  PatternSpec spec{kInvalidTerm, pred, kInvalidTerm, Interval::All()};
  for (auto _ : state) {
    size_t rows = 0;
    store->ScanPattern(spec,
                       [&](const Triple&, const Interval&) { ++rows; });
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_ScanStandard)->Unit(benchmark::kMillisecond);

void BM_ScanCompressed(benchmark::State& state) {
  static Fixture f = MakeWikipedia(Scaled(60000));
  static auto store = BuildStore(System::kRdfTx, f);
  TermId pred = f.dict->Lookup("population");
  PatternSpec spec{kInvalidTerm, pred, kInvalidTerm, Interval::All()};
  for (auto _ : state) {
    size_t rows = 0;
    store->ScanPattern(spec,
                       [&](const Triple&, const Interval&) { ++rows; });
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_ScanCompressed)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  Fixture f = MakeWikipedia(Scaled(60000));

  // Header / te-rule mix of the compressor on real data.
  TemporalGraph graph(TemporalGraphOptions{.compress_leaves = false});
  if (!graph.Load(f.data.triples).ok()) return 1;
  size_t plain_bytes = graph.MemoryUsage();
  mvbt::CompressionStats stats;
  graph.CompressAll(&stats);
  size_t packed_bytes = graph.MemoryUsage();
  const double entries =
      static_cast<double>(stats.compact_headers + stats.normal_headers);
  PrintSeriesHeader("Compression ablation: encoding decision mix",
                    {"entries", "compact_header_pct", "te_live_pct",
                     "te_short_pct", "te_delta_pct", "bytes_saved_pct"});
  PrintSeriesRow(
      {Fmt(entries), Fmt(100.0 * stats.compact_headers / entries),
       Fmt(100.0 * stats.te_live / entries),
       Fmt(100.0 * stats.te_short / entries),
       Fmt(100.0 * stats.te_delta / entries),
       Fmt(100.0 * (1.0 - static_cast<double>(packed_bytes) /
                              static_cast<double>(plain_bytes)))});

  // Block capacity sweep: larger leaves compress better (shared bases)
  // but cost more per update.
  std::printf("\n");
  PrintSeriesHeader("Compression ratio by MVBT block capacity",
                    {"block_capacity", "standard_mb", "compressed_mb",
                     "ratio_pct"});
  for (size_t cap : {16u, 32u, 64u, 128u, 256u}) {
    TemporalGraph std_graph(TemporalGraphOptions{
        .block_capacity = cap, .compress_leaves = false});
    if (!std_graph.Load(f.data.triples).ok()) return 1;
    double std_mb =
        static_cast<double>(std_graph.MemoryUsage()) / (1024.0 * 1024.0);
    std_graph.CompressAll();
    double cmp_mb =
        static_cast<double>(std_graph.MemoryUsage()) / (1024.0 * 1024.0);
    PrintSeriesRow({std::to_string(cap), Fmt(std_mb), Fmt(cmp_mb),
                    Fmt(100.0 * cmp_mb / std_mb)});
  }
  std::printf("\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
