// Shared helpers for the benchmark harness: scale-factor handling,
// dataset/store fixtures, timing, and paper-style series printing.
//
// Default sizes are scaled-down mirrors of the paper's sweeps (5-30M
// Wikipedia triples, 4-20M GovTrack records) so the whole harness runs
// on a laptop; RDFTX_BENCH_SCALE multiplies every size.
#ifndef RDFTX_BENCH_BENCH_COMMON_H_
#define RDFTX_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/namedgraph_store.h"
#include "baselines/rdbms_store.h"
#include "baselines/reification_store.h"
#include "dict/dictionary.h"
#include "engine/executor.h"
#include "optimizer/histogram.h"
#include "optimizer/optimizer.h"
#include "rdf/temporal_graph.h"
#include "workload/dataset.h"

namespace rdftx::bench {

/// Reads RDFTX_BENCH_SCALE (default 1.0).
double ScaleFactor();

/// Scaled dataset size.
size_t Scaled(size_t base);

/// The paper's Wikipedia sweep (5..30M), scaled to base sizes.
std::vector<size_t> WikipediaSweep();
/// The paper's GovTrack sweep (4..20M), scaled.
std::vector<size_t> GovTrackSweep();

/// A generated dataset plus its dictionary.
struct Fixture {
  std::unique_ptr<Dictionary> dict;
  workload::Dataset data;
};

Fixture MakeWikipedia(size_t triples, uint64_t seed = 42);
Fixture MakeGovTrack(size_t triples, uint64_t seed = 1337);

/// All systems compared in Fig 8/9.
enum class System {
  kRdfTx,          // compressed MVBT
  kStandardMvbt,   // MVBT without leaf compression
  kRdbms,
  kReification,
  kNamedGraph,
};

const char* SystemName(System system);

std::unique_ptr<TemporalStore> BuildStore(System system,
                                          const Fixture& fixture);

/// Statistics + optimizer bundle for a fixture (shared across engines so
/// all systems get the same join orders, like the paper's setup where
/// every system's optimizer is enabled).
struct OptimizerBundle {
  optimizer::CharSetCatalog catalog;
  std::unique_ptr<optimizer::TemporalHistogram> histogram;
  std::unique_ptr<optimizer::QueryOptimizer> optimizer;
};

std::unique_ptr<OptimizerBundle> BuildOptimizer(const Fixture& fixture);

/// Bytes of the dataset serialized as interval-annotated N-Triples text
/// — the "raw data" yardstick of Fig 8 (the paper compares index sizes
/// against the raw dataset, not against packed in-memory structs).
size_t RawTextBytes(const Fixture& fixture);

/// Wall-clock seconds of fn().
double TimeSeconds(const std::function<void()>& fn);

/// Average warm-cache milliseconds to run all `queries` once through
/// `engine` (1 warm-up pass + `runs` measured passes, like the paper's
/// average of 5 warm runs).
double AvgQueryMillis(const engine::QueryEngine& engine,
                      const std::vector<std::string>& queries,
                      int runs = 3);

/// Prints a CSV header + rows for a figure series.
void PrintSeriesHeader(const std::string& figure,
                       const std::vector<std::string>& columns);
void PrintSeriesRow(const std::vector<std::string>& cells);

/// Machine-readable bench output: a flat JSON object written to
/// BENCH_<name>.json (in $RDFTX_BENCH_JSON_DIR, default the working
/// directory), so CI can archive one artifact per bench and track the
/// perf trajectory across PRs.
class JsonReport {
 public:
  /// `name` becomes the BENCH_<name>.json file stem.
  explicit JsonReport(std::string name) : name_(std::move(name)) {}

  void Add(const std::string& key, double value);
  void Add(const std::string& key, uint64_t value);
  void Add(const std::string& key, const std::string& value);

  /// Writes the file; returns false (with a stderr note) on I/O failure.
  bool Write() const;

 private:
  std::string name_;
  // Key plus pre-rendered JSON value, in insertion order.
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Formats a number with limited precision.
std::string Fmt(double v);

}  // namespace rdftx::bench

#endif  // RDFTX_BENCH_BENCH_COMMON_H_
