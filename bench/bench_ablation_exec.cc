// Execution-mode ablation: vectorized (columnar blocks + SIMD masks +
// merge joins) vs tuple-at-a-time, on the Fig 9 workload families over
// both histories (Wikipedia, GovTrack). Three classes per dataset:
//   point — repeated point-in-time pattern scans (width-1 windows)
//   range — repeated windowed range scans with interval filters over
//           the compressed store (the headline rows/sec gate)
//   join  — Example 4 subject-star temporal joins through the full
//           engine, plus the vectorized merge join against the MVBT
//           synchronized join on the same queries
// Both modes must produce identical row counts — a mismatch is a
// harness bug, not a result. Results land in BENCH_exec.json.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "engine/translate.h"
#include "engine/vectorized.h"
#include "util/rng.h"
#include "workload/query_gen.h"

namespace {

using namespace rdftx;
using namespace rdftx::bench;

/// One scan-class micro workload: compiled patterns plus the variable
/// table they bind (all patterns share it).
struct ScanWorkload {
  std::vector<engine::CompiledPattern> patterns;
  std::vector<engine::VarInfo> vars;
};

/// Patterns sampled from dataset triples, mixing wide predicate scans
/// with selective subject scans; `point` narrows every window to one
/// chronon at a sampled triple's start (guaranteed hit), otherwise
/// windows cover random mid-history ranges.
ScanWorkload MakeScanWorkload(const Fixture& f, bool point, uint64_t seed) {
  Chronon lo = kChrononMax, hi = 0;
  for (const TemporalTriple& tt : f.data.triples) {
    lo = std::min(lo, tt.iv.start);
    if (tt.iv.end != kChrononNow) hi = std::max(hi, tt.iv.end);
    hi = std::max(hi, tt.iv.start);
  }
  const Chronon span = hi > lo ? hi - lo : 1;
  Rng rng(seed);
  ScanWorkload w;
  w.vars = {{"a", false, false}, {"b", false, false}, {"t", true, false}};
  auto window = [&](const TemporalTriple& tt) {
    if (point) return Interval(tt.iv.start, tt.iv.start + 1);
    const Chronon width = span / 8 + static_cast<Chronon>(
                                         rng.Uniform(span / 4 + 1));
    const Chronon start =
        lo + static_cast<Chronon>(rng.Uniform(span - std::min(span, width) + 1));
    return Interval(start, start + width);
  };
  for (int i = 0; i < 8; ++i) {
    const TemporalTriple& tt =
        f.data.triples[rng.Uniform(f.data.triples.size())];
    engine::CompiledPattern cp;
    cp.spec = PatternSpec{kInvalidTerm, tt.triple.p, kInvalidTerm,
                          window(tt)};
    cp.var_s = 0;
    cp.var_o = 1;
    cp.var_t = 2;
    w.patterns.push_back(cp);
  }
  for (int i = 0; i < 48; ++i) {
    const TemporalTriple& tt =
        f.data.triples[rng.Uniform(f.data.triples.size())];
    engine::CompiledPattern cp;
    cp.spec = PatternSpec{tt.triple.s, kInvalidTerm, kInvalidTerm,
                          window(tt)};
    cp.var_p = 0;
    cp.var_o = 1;
    cp.var_t = 2;
    w.patterns.push_back(cp);
  }
  return w;
}

uint64_t TupleScanPass(const TemporalGraph& store, const ScanWorkload& w) {
  uint64_t rows = 0;
  std::vector<engine::Row> out;
  for (const engine::CompiledPattern& cp : w.patterns) {
    out.clear();
    engine::ScanToRows(store, cp, w.vars.size(), w.vars, &out);
    rows += out.size();
  }
  return rows;
}

uint64_t VectorizedScanPass(const TemporalGraph& store, const ScanWorkload& w,
                            engine::BlockPool* pool) {
  uint64_t rows = 0;
  for (const engine::CompiledPattern& cp : w.patterns) {
    engine::BlockRun run;
    engine::VectorizedScan(store, cp, w.vars.size(), w.vars,
                           /*sort_slot=*/-1, pool, &run, nullptr);
    rows += run.size();
  }
  return rows;
}

/// Total result rows of running every query once (and a correctness
/// fingerprint via row counts).
uint64_t ResultRows(const engine::QueryEngine& eng,
                    const std::vector<std::string>& queries,
                    engine::ExecStats* last_stats) {
  uint64_t rows = 0;
  for (const std::string& q : queries) {
    auto r = eng.Execute(q);
    if (!r.ok()) {
      std::fprintf(stderr, "query failed: %s\n%s\n", r.status().ToString().c_str(),
                   q.c_str());
      std::exit(1);
    }
    rows += r->rows.size();
    if (last_stats != nullptr) *last_stats = r->stats;
  }
  return rows;
}

constexpr int kRuns = 5;

/// Best (minimum) wall time of three timed repetitions — the
/// least-interference estimate, so shared-machine noise does not decide
/// the mode comparison.
template <typename Fn>
double BestOf3(Fn fn) {
  double best = TimeSeconds(fn);
  for (int i = 0; i < 2; ++i) best = std::min(best, TimeSeconds(fn));
  return best;
}

struct DatasetResult {
  double range_speedup = 0;
  double merge_vs_sync = 0;
};

DatasetResult RunDataset(const char* name, Fixture f, JsonReport* report) {
  const std::string ds = name;
  TemporalGraph store(TemporalGraphOptions{.compress_leaves = true});
  if (!store.Load(f.data.triples).ok()) std::exit(1);
  store.CompressAll();
  report->Add(ds + "_triples",
              static_cast<uint64_t>(f.data.triples.size()));

  DatasetResult result;
  PrintSeriesHeader(
      "Exec ablation (" + ds + "): tuple vs vectorized (rows/sec)",
      {"class", "rows", "tuple_rows_per_sec", "vec_rows_per_sec",
       "speedup"});

  // --- point / range scan classes ---
  engine::BlockPool pool;
  for (bool point : {true, false}) {
    const char* cls = point ? "point" : "range";
    const ScanWorkload w = MakeScanWorkload(f, point, point ? 7 : 8);
    const uint64_t tuple_rows = TupleScanPass(store, w);
    const uint64_t vec_rows = VectorizedScanPass(store, w, &pool);
    if (tuple_rows != vec_rows || tuple_rows == 0) {
      std::fprintf(stderr, "%s/%s row mismatch: tuple %llu vs vectorized %llu\n",
                   name, cls, static_cast<unsigned long long>(tuple_rows),
                   static_cast<unsigned long long>(vec_rows));
      std::exit(1);
    }
    const double tuple_s = BestOf3([&] {
      for (int r = 0; r < kRuns; ++r) TupleScanPass(store, w);
    });
    const double vec_s = BestOf3([&] {
      for (int r = 0; r < kRuns; ++r) VectorizedScanPass(store, w, &pool);
    });
    const double tuple_rps = tuple_rows * kRuns / tuple_s;
    const double vec_rps = vec_rows * kRuns / vec_s;
    const double speedup = tuple_s / vec_s;
    if (!point) result.range_speedup = speedup;
    PrintSeriesRow({cls, Fmt(static_cast<double>(tuple_rows)),
                    Fmt(tuple_rps), Fmt(vec_rps), Fmt(speedup)});
    const std::string prefix = ds + "_" + cls;
    report->Add(prefix + "_rows", tuple_rows);
    report->Add(prefix + "_tuple_rows_per_sec", tuple_rps);
    report->Add(prefix + "_vectorized_rows_per_sec", vec_rps);
    report->Add(prefix + "_speedup", speedup);
  }

  // --- join class: full engine, both exec modes, plus sync join ---
  Rng rng(9);
  const auto queries = workload::MakeJoinQueries(f.data, *f.dict, 10, &rng);
  engine::EngineOptions tuple_opts;
  tuple_opts.exec_mode = engine::ExecMode::kTupleAtATime;
  engine::EngineOptions sync_opts;
  sync_opts.join_algorithm = engine::JoinAlgorithm::kSynchronized;
  engine::QueryEngine vec_eng(&store, f.dict.get());
  engine::QueryEngine tuple_eng(&store, f.dict.get(), tuple_opts);
  engine::QueryEngine sync_eng(&store, f.dict.get(), sync_opts);

  engine::ExecStats vec_stats;
  const uint64_t join_rows = ResultRows(vec_eng, queries, &vec_stats);
  if (ResultRows(tuple_eng, queries, nullptr) != join_rows ||
      ResultRows(sync_eng, queries, nullptr) != join_rows) {
    std::fprintf(stderr, "%s join result mismatch across engines\n", name);
    std::exit(1);
  }
  // The index-sorted join workload must actually take the merge path.
  if (vec_stats.merge_join_steps == 0) {
    std::fprintf(stderr, "%s: vectorized engine did not merge join\n", name);
    std::exit(1);
  }
  const double vec_ms = AvgQueryMillis(vec_eng, queries);
  const double tuple_ms = AvgQueryMillis(tuple_eng, queries);
  const double sync_ms = AvgQueryMillis(sync_eng, queries);
  result.merge_vs_sync = sync_ms / vec_ms;
  PrintSeriesRow({"join", Fmt(static_cast<double>(join_rows)),
                  Fmt(join_rows / (tuple_ms / 1000.0)),
                  Fmt(join_rows / (vec_ms / 1000.0)),
                  Fmt(tuple_ms / vec_ms)});
  std::printf("  %s join: merge %.3f ms, sync join %.3f ms -> %.2fx\n",
              name, vec_ms, sync_ms, sync_ms / vec_ms);
  report->Add(ds + "_join_result_rows", join_rows);
  report->Add(ds + "_join_tuple_ms", tuple_ms);
  report->Add(ds + "_join_vectorized_ms", vec_ms);
  report->Add(ds + "_join_speedup", tuple_ms / vec_ms);
  report->Add(ds + "_join_sync_ms", sync_ms);
  report->Add(ds + "_merge_vs_sync_speedup", sync_ms / vec_ms);
  report->Add(ds + "_merge_join_steps", vec_stats.merge_join_steps);
  std::printf("\n");
  return result;
}

}  // namespace

int main() {
  JsonReport report("exec");
  report.Add("runs", static_cast<uint64_t>(kRuns));

  const DatasetResult wiki =
      RunDataset("wikipedia", MakeWikipedia(Scaled(60000)), &report);
  const DatasetResult gov =
      RunDataset("govtrack", MakeGovTrack(Scaled(60000)), &report);

  // Headline numbers: best range-scan speedup (the vectorized-execution
  // acceptance gate) and best merge-vs-sync ratio.
  const double range = std::max(wiki.range_speedup, gov.range_speedup);
  const double merge = std::max(wiki.merge_vs_sync, gov.merge_vs_sync);
  report.Add("range_scan_speedup", range);
  report.Add("merge_vs_sync_best_speedup", merge);
  std::printf("range-scan speedup (vectorized vs tuple, best dataset): %.2fx\n",
              range);
  std::printf("merge join vs synchronized join (best dataset): %.2fx\n",
              merge);
  report.Write();
  return 0;
}
