// Table 1: statistics of the Wikipedia infobox edit history — average
// number of updates per property. Regenerates the table from the
// synthetic history and prints measured-vs-paper values.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace rdftx;
  using namespace rdftx::bench;

  Fixture f = MakeWikipedia(Scaled(150000));
  std::printf("Generated %zu temporal triples, %zu subjects, %zu "
              "predicates\n\n",
              f.data.triples.size(), f.data.subjects.size(),
              f.data.predicates.size());

  struct PaperRow {
    const char* category;
    const char* property;
    double paper_avg;
  };
  const PaperRow paper[] = {
      {"Software", "release", 7.27},
      {"Player", "club", 5.85},
      {"Country", "gdp_ppp", 11.78},
      {"City", "population", 7.16},
  };

  PrintSeriesHeader("Table 1: Wikipedia infobox update statistics",
                    {"category", "property", "paper_avg_updates",
                     "measured_avg_updates"});
  for (const PaperRow& row : paper) {
    double measured = 0;
    for (const auto& s : f.data.stats) {
      if (s.category == row.category && s.property == row.property) {
        measured = s.avg_updates;
      }
    }
    PrintSeriesRow({row.category, row.property, Fmt(row.paper_avg),
                    Fmt(measured)});
  }

  std::printf("\nFull generated schema:\n");
  PrintSeriesHeader("all properties",
                    {"category", "property", "avg_updates", "subjects",
                     "triples"});
  for (const auto& s : f.data.stats) {
    PrintSeriesRow({s.category, s.property, Fmt(s.avg_updates),
                    std::to_string(s.subjects), std::to_string(s.triples)});
  }
  return 0;
}
