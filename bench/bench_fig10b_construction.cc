// Fig 10(b): index construction time — building the four compressed
// MVBT indices from interval triples — as the dataset grows (paper:
// approximately linear in the number of triples; their super-linear
// bump at 25-30M was JVM garbage collection, which has no C++
// counterpart).
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace rdftx;
  using namespace rdftx::bench;

  PrintSeriesHeader("Fig 10(b): index construction time",
                    {"triples", "build_seconds", "triples_per_second"});
  for (size_t n : WikipediaSweep()) {
    Fixture f = MakeWikipedia(n);
    double seconds = TimeSeconds([&] {
      TemporalGraph graph(TemporalGraphOptions{.compress_leaves = true});
      if (!graph.Load(f.data.triples).ok()) std::abort();
    });
    PrintSeriesRow({std::to_string(f.data.triples.size()), Fmt(seconds),
                    Fmt(static_cast<double>(f.data.triples.size()) /
                        seconds)});
  }
  return 0;
}
