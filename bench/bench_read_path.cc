// Read-path overhaul bench: repeated range/snapshot pattern scans over
// the same store, isolating what the zone maps, the devirtualized
// cursor, and the decoded-leaf cache each buy on a hot serving loop.
// Configurations:
//   plain            — uncompressed MVBT, no zone maps, no cache
//   compressed       — delta-compressed leaves, pruning + cache off
//   compressed+zone  — zone maps prune non-intersecting leaves
//   compressed+zone+cache — plus the sharded decoded-leaf cache
// The headline ratio (acceptance gate of the overhaul) is
// compressed / compressed+zone+cache on the repeated workload.
//
// Results are written to BENCH_read_path.json so CI can archive the
// trajectory across PRs.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "util/rng.h"

namespace {

using namespace rdftx;
using namespace rdftx::bench;

struct Config {
  const char* label;
  TemporalGraphOptions opts;
};

/// A repeated serving workload: mid-history windowed scans mixing
/// predicate patterns (wide: many leaves per query) with subject
/// patterns (narrow: selective prefix ranges). The window covers the
/// middle half of the dataset's own event-time span, so scans match
/// real data while zone maps can prune the leaves outside it.
std::vector<PatternSpec> MakeQueries(const Fixture& f) {
  Chronon lo = kChrononMax, hi = 0;
  for (const TemporalTriple& tt : f.data.triples) {
    lo = std::min(lo, tt.iv.start);
    if (tt.iv.end != kChrononNow) hi = std::max(hi, tt.iv.end);
    hi = std::max(hi, tt.iv.start);
  }
  const Chronon span = hi > lo ? hi - lo : 1;
  Rng rng(7);
  const Interval window(lo + span / 4, lo + span / 4 + span / 2);
  std::vector<PatternSpec> queries;
  for (int i = 0; i < 8; ++i) {
    const TemporalTriple& tt =
        f.data.triples[rng.Uniform(f.data.triples.size())];
    queries.push_back(
        PatternSpec{kInvalidTerm, tt.triple.p, kInvalidTerm, window});
  }
  for (int i = 0; i < 64; ++i) {
    const TemporalTriple& tt =
        f.data.triples[rng.Uniform(f.data.triples.size())];
    queries.push_back(
        PatternSpec{tt.triple.s, kInvalidTerm, kInvalidTerm, window});
  }
  return queries;
}

uint64_t RunOnce(const TemporalGraph& store,
                 const std::vector<PatternSpec>& queries, ScanStats* stats) {
  uint64_t rows = 0;
  for (const PatternSpec& spec : queries) {
    store.ScanPattern(
        spec, [&](const Triple&, const Interval&) { ++rows; }, stats);
  }
  return rows;
}

}  // namespace

int main() {
  const Fixture f = MakeWikipedia(Scaled(60000));
  const int kRuns = 5;

  const Config configs[] = {
      {"plain",
       {.compress_leaves = false, .zone_maps = false, .leaf_cache_bytes = 0}},
      {"compressed",
       {.compress_leaves = true, .zone_maps = false, .leaf_cache_bytes = 0}},
      {"compressed_zone",
       {.compress_leaves = true, .zone_maps = true, .leaf_cache_bytes = 0}},
      {"compressed_zone_cache",
       {.compress_leaves = true,
        .zone_maps = true,
        .leaf_cache_bytes = 32u << 20}},
  };

  JsonReport report("read_path");
  report.Add("dataset_triples", static_cast<uint64_t>(f.data.triples.size()));
  report.Add("runs", static_cast<uint64_t>(kRuns));

  PrintSeriesHeader(
      "Read path: repeated windowed scans (avg ms per pass)",
      {"config", "ms_per_pass", "rows", "leaves_visited", "leaves_pruned",
       "entries_decoded", "cache_hits", "cache_misses"});

  double compressed_ms = 0, full_ms = 0;
  uint64_t expect_rows = 0;
  bool have_expect = false;
  for (const Config& cfg : configs) {
    TemporalGraph store(cfg.opts);
    if (!store.Load(f.data.triples).ok()) return 1;
    // Compressed configs finish the live tail; the plain baseline stays
    // fully uncompressed.
    if (cfg.opts.compress_leaves) store.CompressAll();
    const auto queries = MakeQueries(f);

    // Warm-up pass (fills the cache) + counter pass, then timed passes.
    uint64_t rows = RunOnce(store, queries, nullptr);
    ScanStats stats;
    RunOnce(store, queries, &stats);
    double seconds = TimeSeconds([&] {
      for (int r = 0; r < kRuns; ++r) rows = RunOnce(store, queries, nullptr);
    });
    const double ms = seconds * 1000.0 / kRuns;

    if (!have_expect) {
      expect_rows = rows;
      have_expect = true;
    }
    if (rows == 0 || rows != expect_rows) {
      // A zero-row workload would make every config trivially "fast";
      // treat it as a harness bug, not a result.
      std::fprintf(stderr, "result mismatch: %s returned %llu rows, want %llu (nonzero)\n",
                   cfg.label, static_cast<unsigned long long>(rows),
                   static_cast<unsigned long long>(expect_rows));
      return 1;
    }
    if (std::string(cfg.label) == "compressed") compressed_ms = ms;
    if (std::string(cfg.label) == "compressed_zone_cache") full_ms = ms;

    PrintSeriesRow({cfg.label, Fmt(ms), Fmt(static_cast<double>(rows)),
                    Fmt(static_cast<double>(stats.leaves_visited)),
                    Fmt(static_cast<double>(stats.leaves_pruned)),
                    Fmt(static_cast<double>(stats.entries_decoded)),
                    Fmt(static_cast<double>(stats.cache_hits)),
                    Fmt(static_cast<double>(stats.cache_misses))});

    std::string prefix = cfg.label;
    report.Add(prefix + "_ms_per_pass", ms);
    report.Add(prefix + "_rows", rows);
    report.Add(prefix + "_leaves_visited", stats.leaves_visited);
    report.Add(prefix + "_leaves_pruned", stats.leaves_pruned);
    report.Add(prefix + "_entries_decoded", stats.entries_decoded);
    report.Add(prefix + "_cache_hits", stats.cache_hits);
    report.Add(prefix + "_cache_misses", stats.cache_misses);
  }

  const double speedup = full_ms > 0 ? compressed_ms / full_ms : 0;
  report.Add("speedup_zone_cache_vs_compressed", speedup);
  std::printf("\nspeedup (zone maps + cache vs neither, compressed tree): "
              "%.2fx\n",
              speedup);
  report.Write();
  return 0;
}
