#include "bench_common.h"

#include <cstdio>
#include <cstdlib>

#include "storage/snapshot_format.h"
#include "util/checksum.h"
#include "workload/govtrack_gen.h"
#include "workload/wikipedia_gen.h"

namespace rdftx::bench {

double ScaleFactor() {
  const char* env = std::getenv("RDFTX_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  double v = std::atof(env);
  return v > 0 ? v : 1.0;
}

size_t Scaled(size_t base) {
  return static_cast<size_t>(static_cast<double>(base) * ScaleFactor());
}

std::vector<size_t> WikipediaSweep() {
  // Mirrors the paper's 5, 10, 15, 20, 25, 30 million.
  std::vector<size_t> out;
  for (size_t base : {30000u, 60000u, 90000u, 120000u, 150000u, 180000u}) {
    out.push_back(Scaled(base));
  }
  return out;
}

std::vector<size_t> GovTrackSweep() {
  // Mirrors the paper's 4, 8, 12, 16, 20 million.
  std::vector<size_t> out;
  for (size_t base : {24000u, 48000u, 72000u, 96000u, 120000u}) {
    out.push_back(Scaled(base));
  }
  return out;
}

Fixture MakeWikipedia(size_t triples, uint64_t seed) {
  Fixture f;
  f.dict = std::make_unique<Dictionary>();
  f.data = workload::GenerateWikipedia(
      f.dict.get(),
      workload::WikipediaOptions{.num_triples = triples, .seed = seed});
  return f;
}

Fixture MakeGovTrack(size_t triples, uint64_t seed) {
  Fixture f;
  f.dict = std::make_unique<Dictionary>();
  f.data = workload::GenerateGovTrack(
      f.dict.get(),
      workload::GovTrackOptions{.num_triples = triples, .seed = seed});
  return f;
}

const char* SystemName(System system) {
  switch (system) {
    case System::kRdfTx:
      return "RDF-TX";
    case System::kStandardMvbt:
      return "StandardMVBT";
    case System::kRdbms:
      return "MySQL-like";
    case System::kReification:
      return "Jena-Ref/RDF-3X-like";
    case System::kNamedGraph:
      return "Jena-NG-like";
  }
  return "?";
}

namespace {

// Snapshot caching for the MVBT-backed systems: with RDFTX_SNAPSHOT_DIR
// set, BuildStore loads a previously saved snapshot instead of
// re-ingesting, and saves one after a cold ingest. Keyed by system,
// triple count, and a fingerprint of the graph options + snapshot
// format version — datasets are pure functions of their seed, so a
// sweep's sizes never collide, but the same tag IS built under
// different options (block-capacity / compression / zone-map sweeps in
// the fig10b and ablation benches), and without the fingerprint one
// configuration's cache would silently serve another's. Lets repeated
// fig9/fig8 runs skip the dominant setup cost.
std::unique_ptr<TemporalGraph> BuildMvbtStore(const TemporalGraphOptions& opts,
                                              const char* tag,
                                              const Fixture& fixture) {
  std::string path;
  if (const char* dir = std::getenv("RDFTX_SNAPSHOT_DIR")) {
    // leaf_cache_bytes is excluded: it is a runtime cache budget, not
    // persisted state, so it cannot change what the snapshot holds.
    storage::ByteWriter fp;
    fp.U32(storage::kFormatVersion);
    fp.U64(opts.block_capacity);
    fp.U8(opts.compress_leaves ? 1 : 0);
    fp.U8(opts.zone_maps ? 1 : 0);
    const uint64_t fingerprint = util::XxHash64(
        fp.buffer().data(), fp.buffer().size(), storage::kChecksumSeed);
    char fp_hex[17];
    std::snprintf(fp_hex, sizeof(fp_hex), "%016llx",
                  static_cast<unsigned long long>(fingerprint));
    path = std::string(dir) + "/" + tag + "_" +
           std::to_string(fixture.data.triples.size()) + "_" + fp_hex +
           ".rtxsnap";
    auto cached = std::make_unique<TemporalGraph>(opts);
    Status st = cached->LoadSnapshot(path);
    if (st.ok()) return cached;
  }
  auto store = std::make_unique<TemporalGraph>(opts);
  Status st = store->Load(fixture.data.triples);
  if (!st.ok()) {
    std::fprintf(stderr, "store load failed: %s\n", st.ToString().c_str());
    std::abort();
  }
  if (!path.empty()) {
    st = store->SaveSnapshot(path, fixture.dict.get());
    if (!st.ok()) {
      std::fprintf(stderr, "snapshot cache save failed (continuing): %s\n",
                   st.ToString().c_str());
    }
  }
  return store;
}

}  // namespace

std::unique_ptr<TemporalStore> BuildStore(System system,
                                          const Fixture& fixture) {
  std::unique_ptr<TemporalStore> store;
  switch (system) {
    case System::kRdfTx:
      return BuildMvbtStore(TemporalGraphOptions{.compress_leaves = true},
                            "rdftx", fixture);
    case System::kStandardMvbt:
      return BuildMvbtStore(TemporalGraphOptions{.compress_leaves = false},
                            "stdmvbt", fixture);
    case System::kRdbms:
      store = std::make_unique<RdbmsStore>();
      break;
    case System::kReification:
      store = std::make_unique<ReificationStore>();
      break;
    case System::kNamedGraph:
      store = std::make_unique<NamedGraphStore>();
      break;
  }
  Status st = store->Load(fixture.data.triples);
  if (!st.ok()) {
    std::fprintf(stderr, "store load failed: %s\n", st.ToString().c_str());
    std::abort();
  }
  return store;
}

std::unique_ptr<OptimizerBundle> BuildOptimizer(const Fixture& fixture) {
  auto bundle = std::make_unique<OptimizerBundle>();
  bundle->catalog.Build(fixture.data.triples);
  bundle->histogram = std::make_unique<optimizer::TemporalHistogram>(
      &bundle->catalog, fixture.data.triples,
      fixture.data.triples.size() * sizeof(TemporalTriple));
  bundle->optimizer = std::make_unique<optimizer::QueryOptimizer>(
      &bundle->catalog, bundle->histogram.get());
  return bundle;
}

size_t RawTextBytes(const Fixture& fixture) {
  size_t bytes = 0;
  for (const TemporalTriple& tt : fixture.data.triples) {
    bytes += fixture.dict->Decode(tt.triple.s).size() +
             fixture.dict->Decode(tt.triple.p).size() +
             fixture.dict->Decode(tt.triple.o).size();
    bytes += 2 * 10 + 6;  // "YYYY-MM-DD" twice + separators/newline
  }
  return bytes;
}

double TimeSeconds(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

double AvgQueryMillis(const engine::QueryEngine& engine,
                      const std::vector<std::string>& queries, int runs) {
  uint64_t sink = 0;
  // Warm-up pass.
  for (const std::string& q : queries) {
    auto r = engine.Execute(q);
    if (!r.ok()) {
      std::fprintf(stderr, "query failed: %s\n%s\n",
                   r.status().ToString().c_str(), q.c_str());
      std::abort();
    }
    sink += r->rows.size();
  }
  double seconds = TimeSeconds([&] {
    for (int run = 0; run < runs; ++run) {
      for (const std::string& q : queries) {
        auto r = engine.Execute(q);
        sink += r.ok() ? r->rows.size() : 0;
      }
    }
  });
  if (sink == 0xDEADBEEF) std::printf("#");  // keep sink alive
  return seconds * 1000.0 /
         (static_cast<double>(runs) * static_cast<double>(queries.size()));
}

void PrintSeriesHeader(const std::string& figure,
                       const std::vector<std::string>& columns) {
  std::printf("### %s\n", figure.c_str());
  for (size_t i = 0; i < columns.size(); ++i) {
    std::printf("%s%s", i ? "," : "", columns[i].c_str());
  }
  std::printf("\n");
  std::fflush(stdout);
}

void PrintSeriesRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    std::printf("%s%s", i ? "," : "", cells[i].c_str());
  }
  std::printf("\n");
  std::fflush(stdout);
}

void JsonReport::Add(const std::string& key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  fields_.emplace_back(key, buf);
}

void JsonReport::Add(const std::string& key, uint64_t value) {
  fields_.emplace_back(key, std::to_string(value));
}

void JsonReport::Add(const std::string& key, const std::string& value) {
  std::string quoted = "\"";
  for (char c : value) {
    if (c == '"' || c == '\\') quoted.push_back('\\');
    quoted.push_back(c);
  }
  quoted.push_back('"');
  fields_.emplace_back(key, std::move(quoted));
}

bool JsonReport::Write() const {
  std::string path;
  if (const char* dir = std::getenv("RDFTX_BENCH_JSON_DIR")) {
    path = std::string(dir) + "/";
  }
  path += "BENCH_" + name_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "JsonReport: cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n");
  for (size_t i = 0; i < fields_.size(); ++i) {
    std::fprintf(f, "  \"%s\": %s%s\n", fields_[i].first.c_str(),
                 fields_[i].second.c_str(),
                 i + 1 < fields_.size() ? "," : "");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

std::string Fmt(double v) {
  char buf[32];
  if (v >= 100 || v == static_cast<int64_t>(v)) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else if (v >= 1) {
    std::snprintf(buf, sizeof(buf), "%.2f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.4f", v);
  }
  return buf;
}

}  // namespace rdftx::bench
