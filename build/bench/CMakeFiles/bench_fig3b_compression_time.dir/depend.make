# Empty dependencies file for bench_fig3b_compression_time.
# This may be replaced when dependencies are built.
