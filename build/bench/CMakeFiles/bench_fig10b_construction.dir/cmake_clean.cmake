file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10b_construction.dir/bench_common.cc.o"
  "CMakeFiles/bench_fig10b_construction.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_fig10b_construction.dir/bench_fig10b_construction.cc.o"
  "CMakeFiles/bench_fig10b_construction.dir/bench_fig10b_construction.cc.o.d"
  "bench_fig10b_construction"
  "bench_fig10b_construction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10b_construction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
