# Empty dependencies file for bench_fig10b_construction.
# This may be replaced when dependencies are built.
