file(REMOVE_RECURSE
  "CMakeFiles/bench_histogram_size.dir/bench_common.cc.o"
  "CMakeFiles/bench_histogram_size.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_histogram_size.dir/bench_histogram_size.cc.o"
  "CMakeFiles/bench_histogram_size.dir/bench_histogram_size.cc.o.d"
  "bench_histogram_size"
  "bench_histogram_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_histogram_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
