# Empty compiler generated dependencies file for bench_histogram_size.
# This may be replaced when dependencies are built.
