file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_govtrack.dir/bench_common.cc.o"
  "CMakeFiles/bench_fig9_govtrack.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_fig9_govtrack.dir/bench_fig9_govtrack.cc.o"
  "CMakeFiles/bench_fig9_govtrack.dir/bench_fig9_govtrack.cc.o.d"
  "bench_fig9_govtrack"
  "bench_fig9_govtrack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_govtrack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
