file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10c_maintenance.dir/bench_common.cc.o"
  "CMakeFiles/bench_fig10c_maintenance.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_fig10c_maintenance.dir/bench_fig10c_maintenance.cc.o"
  "CMakeFiles/bench_fig10c_maintenance.dir/bench_fig10c_maintenance.cc.o.d"
  "bench_fig10c_maintenance"
  "bench_fig10c_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10c_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
