# Empty dependencies file for bench_fig10a_optimizer.
# This may be replaced when dependencies are built.
