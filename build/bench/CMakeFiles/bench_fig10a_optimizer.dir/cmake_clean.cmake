file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10a_optimizer.dir/bench_common.cc.o"
  "CMakeFiles/bench_fig10a_optimizer.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_fig10a_optimizer.dir/bench_fig10a_optimizer.cc.o"
  "CMakeFiles/bench_fig10a_optimizer.dir/bench_fig10a_optimizer.cc.o.d"
  "bench_fig10a_optimizer"
  "bench_fig10a_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10a_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
