file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_wikipedia.dir/bench_common.cc.o"
  "CMakeFiles/bench_fig9_wikipedia.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_fig9_wikipedia.dir/bench_fig9_wikipedia.cc.o"
  "CMakeFiles/bench_fig9_wikipedia.dir/bench_fig9_wikipedia.cc.o.d"
  "bench_fig9_wikipedia"
  "bench_fig9_wikipedia.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_wikipedia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
