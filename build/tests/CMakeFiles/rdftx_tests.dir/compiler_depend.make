# Empty compiler generated dependencies file for rdftx_tests.
# This may be replaced when dependencies are built.
