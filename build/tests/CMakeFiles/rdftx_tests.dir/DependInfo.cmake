
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines_test.cc" "tests/CMakeFiles/rdftx_tests.dir/baselines_test.cc.o" "gcc" "tests/CMakeFiles/rdftx_tests.dir/baselines_test.cc.o.d"
  "/root/repo/tests/btree_test.cc" "tests/CMakeFiles/rdftx_tests.dir/btree_test.cc.o" "gcc" "tests/CMakeFiles/rdftx_tests.dir/btree_test.cc.o.d"
  "/root/repo/tests/cmvsbt_test.cc" "tests/CMakeFiles/rdftx_tests.dir/cmvsbt_test.cc.o" "gcc" "tests/CMakeFiles/rdftx_tests.dir/cmvsbt_test.cc.o.d"
  "/root/repo/tests/date_test.cc" "tests/CMakeFiles/rdftx_tests.dir/date_test.cc.o" "gcc" "tests/CMakeFiles/rdftx_tests.dir/date_test.cc.o.d"
  "/root/repo/tests/dictionary_test.cc" "tests/CMakeFiles/rdftx_tests.dir/dictionary_test.cc.o" "gcc" "tests/CMakeFiles/rdftx_tests.dir/dictionary_test.cc.o.d"
  "/root/repo/tests/engine_edge_test.cc" "tests/CMakeFiles/rdftx_tests.dir/engine_edge_test.cc.o" "gcc" "tests/CMakeFiles/rdftx_tests.dir/engine_edge_test.cc.o.d"
  "/root/repo/tests/engine_sync_join_test.cc" "tests/CMakeFiles/rdftx_tests.dir/engine_sync_join_test.cc.o" "gcc" "tests/CMakeFiles/rdftx_tests.dir/engine_sync_join_test.cc.o.d"
  "/root/repo/tests/engine_test.cc" "tests/CMakeFiles/rdftx_tests.dir/engine_test.cc.o" "gcc" "tests/CMakeFiles/rdftx_tests.dir/engine_test.cc.o.d"
  "/root/repo/tests/leaf_block_test.cc" "tests/CMakeFiles/rdftx_tests.dir/leaf_block_test.cc.o" "gcc" "tests/CMakeFiles/rdftx_tests.dir/leaf_block_test.cc.o.d"
  "/root/repo/tests/lexer_test.cc" "tests/CMakeFiles/rdftx_tests.dir/lexer_test.cc.o" "gcc" "tests/CMakeFiles/rdftx_tests.dir/lexer_test.cc.o.d"
  "/root/repo/tests/mvbt_stress_test.cc" "tests/CMakeFiles/rdftx_tests.dir/mvbt_stress_test.cc.o" "gcc" "tests/CMakeFiles/rdftx_tests.dir/mvbt_stress_test.cc.o.d"
  "/root/repo/tests/mvbt_test.cc" "tests/CMakeFiles/rdftx_tests.dir/mvbt_test.cc.o" "gcc" "tests/CMakeFiles/rdftx_tests.dir/mvbt_test.cc.o.d"
  "/root/repo/tests/optimizer_test.cc" "tests/CMakeFiles/rdftx_tests.dir/optimizer_test.cc.o" "gcc" "tests/CMakeFiles/rdftx_tests.dir/optimizer_test.cc.o.d"
  "/root/repo/tests/parser_test.cc" "tests/CMakeFiles/rdftx_tests.dir/parser_test.cc.o" "gcc" "tests/CMakeFiles/rdftx_tests.dir/parser_test.cc.o.d"
  "/root/repo/tests/rdftx_facade_test.cc" "tests/CMakeFiles/rdftx_tests.dir/rdftx_facade_test.cc.o" "gcc" "tests/CMakeFiles/rdftx_tests.dir/rdftx_facade_test.cc.o.d"
  "/root/repo/tests/sync_join_test.cc" "tests/CMakeFiles/rdftx_tests.dir/sync_join_test.cc.o" "gcc" "tests/CMakeFiles/rdftx_tests.dir/sync_join_test.cc.o.d"
  "/root/repo/tests/temporal_graph_test.cc" "tests/CMakeFiles/rdftx_tests.dir/temporal_graph_test.cc.o" "gcc" "tests/CMakeFiles/rdftx_tests.dir/temporal_graph_test.cc.o.d"
  "/root/repo/tests/temporal_set_test.cc" "tests/CMakeFiles/rdftx_tests.dir/temporal_set_test.cc.o" "gcc" "tests/CMakeFiles/rdftx_tests.dir/temporal_set_test.cc.o.d"
  "/root/repo/tests/union_optional_test.cc" "tests/CMakeFiles/rdftx_tests.dir/union_optional_test.cc.o" "gcc" "tests/CMakeFiles/rdftx_tests.dir/union_optional_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/rdftx_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/rdftx_tests.dir/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rdftx.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
