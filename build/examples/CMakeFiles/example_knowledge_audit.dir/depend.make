# Empty dependencies file for example_knowledge_audit.
# This may be replaced when dependencies are built.
