file(REMOVE_RECURSE
  "CMakeFiles/example_knowledge_audit.dir/knowledge_audit.cpp.o"
  "CMakeFiles/example_knowledge_audit.dir/knowledge_audit.cpp.o.d"
  "example_knowledge_audit"
  "example_knowledge_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_knowledge_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
