file(REMOVE_RECURSE
  "CMakeFiles/example_wikipedia_history.dir/wikipedia_history.cpp.o"
  "CMakeFiles/example_wikipedia_history.dir/wikipedia_history.cpp.o.d"
  "example_wikipedia_history"
  "example_wikipedia_history.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_wikipedia_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
