# Empty dependencies file for example_wikipedia_history.
# This may be replaced when dependencies are built.
