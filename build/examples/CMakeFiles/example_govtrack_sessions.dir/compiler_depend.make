# Empty compiler generated dependencies file for example_govtrack_sessions.
# This may be replaced when dependencies are built.
