file(REMOVE_RECURSE
  "CMakeFiles/example_govtrack_sessions.dir/govtrack_sessions.cpp.o"
  "CMakeFiles/example_govtrack_sessions.dir/govtrack_sessions.cpp.o.d"
  "example_govtrack_sessions"
  "example_govtrack_sessions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_govtrack_sessions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
