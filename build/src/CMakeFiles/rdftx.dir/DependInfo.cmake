
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/naive_store.cc" "src/CMakeFiles/rdftx.dir/baselines/naive_store.cc.o" "gcc" "src/CMakeFiles/rdftx.dir/baselines/naive_store.cc.o.d"
  "/root/repo/src/baselines/namedgraph_store.cc" "src/CMakeFiles/rdftx.dir/baselines/namedgraph_store.cc.o" "gcc" "src/CMakeFiles/rdftx.dir/baselines/namedgraph_store.cc.o.d"
  "/root/repo/src/baselines/rdbms_store.cc" "src/CMakeFiles/rdftx.dir/baselines/rdbms_store.cc.o" "gcc" "src/CMakeFiles/rdftx.dir/baselines/rdbms_store.cc.o.d"
  "/root/repo/src/baselines/reification_store.cc" "src/CMakeFiles/rdftx.dir/baselines/reification_store.cc.o" "gcc" "src/CMakeFiles/rdftx.dir/baselines/reification_store.cc.o.d"
  "/root/repo/src/core/rdftx.cc" "src/CMakeFiles/rdftx.dir/core/rdftx.cc.o" "gcc" "src/CMakeFiles/rdftx.dir/core/rdftx.cc.o.d"
  "/root/repo/src/dict/dictionary.cc" "src/CMakeFiles/rdftx.dir/dict/dictionary.cc.o" "gcc" "src/CMakeFiles/rdftx.dir/dict/dictionary.cc.o.d"
  "/root/repo/src/engine/executor.cc" "src/CMakeFiles/rdftx.dir/engine/executor.cc.o" "gcc" "src/CMakeFiles/rdftx.dir/engine/executor.cc.o.d"
  "/root/repo/src/engine/operators.cc" "src/CMakeFiles/rdftx.dir/engine/operators.cc.o" "gcc" "src/CMakeFiles/rdftx.dir/engine/operators.cc.o.d"
  "/root/repo/src/engine/translate.cc" "src/CMakeFiles/rdftx.dir/engine/translate.cc.o" "gcc" "src/CMakeFiles/rdftx.dir/engine/translate.cc.o.d"
  "/root/repo/src/mvbt/key.cc" "src/CMakeFiles/rdftx.dir/mvbt/key.cc.o" "gcc" "src/CMakeFiles/rdftx.dir/mvbt/key.cc.o.d"
  "/root/repo/src/mvbt/leaf_block.cc" "src/CMakeFiles/rdftx.dir/mvbt/leaf_block.cc.o" "gcc" "src/CMakeFiles/rdftx.dir/mvbt/leaf_block.cc.o.d"
  "/root/repo/src/mvbt/mvbt.cc" "src/CMakeFiles/rdftx.dir/mvbt/mvbt.cc.o" "gcc" "src/CMakeFiles/rdftx.dir/mvbt/mvbt.cc.o.d"
  "/root/repo/src/mvbt/sync_join.cc" "src/CMakeFiles/rdftx.dir/mvbt/sync_join.cc.o" "gcc" "src/CMakeFiles/rdftx.dir/mvbt/sync_join.cc.o.d"
  "/root/repo/src/mvsbt/cmvsbt.cc" "src/CMakeFiles/rdftx.dir/mvsbt/cmvsbt.cc.o" "gcc" "src/CMakeFiles/rdftx.dir/mvsbt/cmvsbt.cc.o.d"
  "/root/repo/src/optimizer/char_set.cc" "src/CMakeFiles/rdftx.dir/optimizer/char_set.cc.o" "gcc" "src/CMakeFiles/rdftx.dir/optimizer/char_set.cc.o.d"
  "/root/repo/src/optimizer/histogram.cc" "src/CMakeFiles/rdftx.dir/optimizer/histogram.cc.o" "gcc" "src/CMakeFiles/rdftx.dir/optimizer/histogram.cc.o.d"
  "/root/repo/src/optimizer/optimizer.cc" "src/CMakeFiles/rdftx.dir/optimizer/optimizer.cc.o" "gcc" "src/CMakeFiles/rdftx.dir/optimizer/optimizer.cc.o.d"
  "/root/repo/src/rdf/temporal_graph.cc" "src/CMakeFiles/rdftx.dir/rdf/temporal_graph.cc.o" "gcc" "src/CMakeFiles/rdftx.dir/rdf/temporal_graph.cc.o.d"
  "/root/repo/src/sparqlt/ast.cc" "src/CMakeFiles/rdftx.dir/sparqlt/ast.cc.o" "gcc" "src/CMakeFiles/rdftx.dir/sparqlt/ast.cc.o.d"
  "/root/repo/src/sparqlt/lexer.cc" "src/CMakeFiles/rdftx.dir/sparqlt/lexer.cc.o" "gcc" "src/CMakeFiles/rdftx.dir/sparqlt/lexer.cc.o.d"
  "/root/repo/src/sparqlt/parser.cc" "src/CMakeFiles/rdftx.dir/sparqlt/parser.cc.o" "gcc" "src/CMakeFiles/rdftx.dir/sparqlt/parser.cc.o.d"
  "/root/repo/src/temporal/interval.cc" "src/CMakeFiles/rdftx.dir/temporal/interval.cc.o" "gcc" "src/CMakeFiles/rdftx.dir/temporal/interval.cc.o.d"
  "/root/repo/src/temporal/temporal_set.cc" "src/CMakeFiles/rdftx.dir/temporal/temporal_set.cc.o" "gcc" "src/CMakeFiles/rdftx.dir/temporal/temporal_set.cc.o.d"
  "/root/repo/src/util/date.cc" "src/CMakeFiles/rdftx.dir/util/date.cc.o" "gcc" "src/CMakeFiles/rdftx.dir/util/date.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/rdftx.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/rdftx.dir/util/rng.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/rdftx.dir/util/status.cc.o" "gcc" "src/CMakeFiles/rdftx.dir/util/status.cc.o.d"
  "/root/repo/src/util/varint.cc" "src/CMakeFiles/rdftx.dir/util/varint.cc.o" "gcc" "src/CMakeFiles/rdftx.dir/util/varint.cc.o.d"
  "/root/repo/src/workload/govtrack_gen.cc" "src/CMakeFiles/rdftx.dir/workload/govtrack_gen.cc.o" "gcc" "src/CMakeFiles/rdftx.dir/workload/govtrack_gen.cc.o.d"
  "/root/repo/src/workload/query_gen.cc" "src/CMakeFiles/rdftx.dir/workload/query_gen.cc.o" "gcc" "src/CMakeFiles/rdftx.dir/workload/query_gen.cc.o.d"
  "/root/repo/src/workload/wikipedia_gen.cc" "src/CMakeFiles/rdftx.dir/workload/wikipedia_gen.cc.o" "gcc" "src/CMakeFiles/rdftx.dir/workload/wikipedia_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
