# Empty dependencies file for rdftx.
# This may be replaced when dependencies are built.
