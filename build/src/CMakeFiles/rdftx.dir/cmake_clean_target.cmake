file(REMOVE_RECURSE
  "librdftx.a"
)
