// MVBT operation-stream fuzzer: interprets the input as a sequence of
// insert / erase / compress / advance-time operations over a small key
// space, mirrors every mutation into a naive interval oracle, and
// cross-checks snapshots, per-key validity sets, and the structural
// invariant verifier at checkpoints. Small block capacities (chosen
// from the input) force frequent version/key splits and merges, so a
// few hundred ops exercise every restructure path.
#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "analysis/invariants.h"
#include "fuzz_util.h"
#include "mvbt/mvbt.h"
#include "temporal/temporal_set.h"

namespace {

using rdftx::Chronon;
using rdftx::Interval;
using rdftx::TemporalSet;
using rdftx::mvbt::Key3;
using rdftx::mvbt::KeyRange;
using rdftx::mvbt::Mvbt;
using rdftx::mvbt::MvbtOptions;

// Ground truth: live start times plus closed intervals, replayed with
// the same nondecreasing clock the tree sees.
struct Oracle {
  std::map<Key3, Chronon> live;
  std::vector<std::pair<Key3, Interval>> closed;

  bool Insert(const Key3& k, Chronon t) { return live.emplace(k, t).second; }

  bool Erase(const Key3& k, Chronon t) {
    auto it = live.find(k);
    if (it == live.end()) return false;
    closed.emplace_back(k, Interval(it->second, t));
    live.erase(it);
    return true;
  }

  std::set<Key3> Snapshot(Chronon t) const {
    std::set<Key3> out;
    for (const auto& [k, iv] : closed) {
      if (iv.Contains(t)) out.insert(k);
    }
    for (const auto& [k, ts] : live) {
      if (t >= ts) out.insert(k);
    }
    return out;
  }

  TemporalSet Validity(const Key3& k) const {
    std::vector<Interval> ivs;
    for (const auto& [ck, iv] : closed) {
      if (ck == k) ivs.push_back(iv);
    }
    auto it = live.find(k);
    if (it != live.end()) ivs.push_back(Interval(it->second, rdftx::kChrononNow));
    return TemporalSet::FromIntervals(ivs);
  }
};

void CheckSnapshot(const Mvbt& tree, const Oracle& oracle, Chronon at) {
  std::set<Key3> got;
  tree.QuerySnapshot(KeyRange{}, at, [&](const Key3& k) { got.insert(k); });
  std::set<Key3> want = oracle.Snapshot(at);
  RDFTX_FUZZ_CHECK(got == want,
                   "snapshot at %u: tree has %zu keys, oracle has %zu",
                   at, got.size(), want.size());
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  rdftx::fuzz::FuzzInput in(data, size);

  MvbtOptions options;
  options.block_capacity = 8 + in.U8() % 57;  // 8..64
  options.compress_leaves = in.Bool();
  Mvbt tree(options);
  Oracle oracle;

  Chronon t = 1;
  std::vector<Chronon> checkpoints;
  size_t ops = 0;
  while (!in.empty() && ops < 1024) {
    ++ops;
    const uint8_t op = in.U8();
    switch (op % 8) {
      case 0:
      case 1:
      case 2:
      case 3: {  // insert (weighted: churn grows the structure fastest)
        Key3 k{in.U8() % 6u, in.U8() % 6u, in.U8() % 16u};
        const bool want = oracle.Insert(k, t);
        rdftx::Status s = tree.Insert(k, t);
        RDFTX_FUZZ_CHECK(s.ok() == want, "Insert(%s, %u): tree=%s oracle=%d",
                         k.ToString().c_str(), t, s.ToString().c_str(),
                         want ? 1 : 0);
        break;
      }
      case 4:
      case 5: {  // erase
        Key3 k{in.U8() % 6u, in.U8() % 6u, in.U8() % 16u};
        const bool want = oracle.Erase(k, t);
        rdftx::Status s = tree.Erase(k, t);
        RDFTX_FUZZ_CHECK(s.ok() == want, "Erase(%s, %u): tree=%s oracle=%d",
                         k.ToString().c_str(), t, s.ToString().c_str(),
                         want ? 1 : 0);
        break;
      }
      case 6: {  // advance the clock (sometimes by a large step)
        t += 1 + in.U8() % 7;
        break;
      }
      case 7: {  // maintenance sweep + checkpoint cross-check
        tree.CompressAllLeaves();
        checkpoints.push_back(t);
        CheckSnapshot(tree, oracle, t);
        rdftx::Status deep = rdftx::analysis::ValidateMvbt(tree);
        RDFTX_FUZZ_CHECK(deep.ok(), "invariants: %s", deep.ToString().c_str());
        break;
      }
    }
    RDFTX_FUZZ_CHECK(tree.live_size() == oracle.live.size(),
                     "live_size %zu vs oracle %zu", tree.live_size(),
                     oracle.live.size());
  }

  // Final deep validation plus historic snapshots at every checkpoint.
  rdftx::Status deep = rdftx::analysis::ValidateMvbt(tree);
  RDFTX_FUZZ_CHECK(deep.ok(), "final invariants: %s", deep.ToString().c_str());
  for (Chronon at : checkpoints) CheckSnapshot(tree, oracle, at);
  CheckSnapshot(tree, oracle, t);

  // Per-key validity sets (QueryRange fragments, coalesced) must equal
  // the oracle's interval history for every key ever touched.
  std::map<Key3, std::vector<Interval>> fragments;
  tree.QueryRange(KeyRange{}, Interval::All(),
                  [&](const Key3& k, const Interval& iv) {
                    fragments[k].push_back(iv);
                  });
  std::set<Key3> touched;
  for (const auto& [k, iv] : oracle.closed) touched.insert(k);
  for (const auto& [k, ts] : oracle.live) touched.insert(k);
  for (const auto& [k, ivs] : fragments) {
    RDFTX_FUZZ_CHECK(touched.count(k) != 0, "tree reports untouched key %s",
                     k.ToString().c_str());
  }
  // A key whose only generation was insert+erase at the same chronon has
  // empty validity, so the tree may legitimately report no fragments for
  // it — the coalesced comparison below covers that case (both empty).
  for (const Key3& k : touched) {
    TemporalSet got = TemporalSet::FromIntervals(fragments[k]);
    TemporalSet want = oracle.Validity(k);
    RDFTX_FUZZ_CHECK(got == want, "validity mismatch for %s: %s vs %s",
                     k.ToString().c_str(), got.ToString().c_str(),
                     want.ToString().c_str());
  }
  return 0;
}
