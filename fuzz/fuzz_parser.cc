// Parser fuzzer: Parse must never crash, overflow the stack, or trip
// UB on arbitrary bytes; failures must surface as structured
// ParseErrors, and accepted queries must be structurally well-formed.
#include <cstdint>
#include <string_view>

#include "fuzz_util.h"
#include "sparqlt/ast.h"
#include "sparqlt/parser.h"

namespace {

// Accepted queries round-trip through ToString() without crashing and
// satisfy the Query shape contract: either pattern-form (>= 1 pattern)
// or union-form (>= 2 branches, each itself well-formed).
void CheckQueryShape(const rdftx::sparqlt::Query& q) {
  if (!q.union_branches.empty()) {
    RDFTX_FUZZ_CHECK(q.union_branches.size() >= 2,
                     "UNION query with %zu branch", q.union_branches.size());
    for (const rdftx::sparqlt::Query& b : q.union_branches) CheckQueryShape(b);
    return;
  }
  RDFTX_FUZZ_CHECK(!q.patterns.empty() || !q.optionals.empty(),
                   "accepted query has no patterns");
  for (const auto& f : q.filters) {
    RDFTX_FUZZ_CHECK(f != nullptr, "null filter expression");
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);
  auto query = rdftx::sparqlt::Parse(input);
  if (!query.ok()) {
    RDFTX_FUZZ_CHECK(
        query.status().code() == rdftx::StatusCode::kParseError,
        "parser error has code %d", static_cast<int>(query.status().code()));
    RDFTX_FUZZ_CHECK(!query.status().message().empty(),
                     "parse error without a message");
    return 0;
  }
  CheckQueryShape(*query);
  // Pretty-printing an accepted query must not crash (the printer is a
  // debug aid, so the output is not required to re-parse — literals are
  // printed unquoted).
  const std::string printed = query->ToString();
  RDFTX_FUZZ_CHECK(!printed.empty(), "accepted query prints empty");
  return 0;
}
