// Snapshot-loader fuzzer: the input bytes ARE the snapshot file. The
// loader must either reject the buffer with a Status or produce a store
// that holds up under use — it must never crash, hang, or trip a
// sanitizer, because snapshot files cross a trust boundary (they come
// from disk, not from this process).
//
// When a buffer loads, the harness shakes the result: full and pointed
// pattern scans, the structural invariant check the loader already ran,
// and a save→load round trip (a survivor must itself be a valid
// snapshot).
#include <cstdint>
#include <vector>

#include "dict/dictionary.h"
#include "fuzz_util.h"
#include "rdf/temporal_graph.h"
#include "storage/snapshot.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  rdftx::TemporalGraph graph;
  rdftx::Dictionary dict;
  const rdftx::Status st =
      rdftx::storage::ReadSnapshotFromBuffer(data, size, &graph, &dict);
  if (!st.ok()) return 0;

  // The buffer parsed as a valid snapshot. Exercise the store the way a
  // query would.
  size_t fragments = 0;
  rdftx::Triple last{};
  graph.ScanPattern(rdftx::PatternSpec{},
                    [&](const rdftx::Triple& t, const rdftx::Interval& iv) {
                      RDFTX_FUZZ_CHECK(!iv.empty(),
                                       "scan emitted an empty interval");
                      ++fragments;
                      last = t;
                    });
  if (fragments > 0) {
    // A pointed scan on a known-present triple must find it.
    size_t hits = 0;
    graph.ScanPattern(rdftx::PatternSpec{last.s, last.p, last.o},
                      [&](const rdftx::Triple&, const rdftx::Interval&) {
                        ++hits;
                      });
    RDFTX_FUZZ_CHECK(hits > 0, "pointed scan missed a scanned triple");
  }

  // A loaded store must round-trip: serialize it and load that image.
  const std::vector<uint8_t> resaved =
      rdftx::storage::SerializeSnapshot(graph, &dict);
  rdftx::TemporalGraph graph2;
  rdftx::Dictionary dict2;
  const rdftx::Status again = rdftx::storage::ReadSnapshotFromBuffer(
      resaved.data(), resaved.size(), &graph2, &dict2);
  RDFTX_FUZZ_CHECK(again.ok(), "re-saved snapshot failed to load: %s",
                   again.ToString().c_str());
  RDFTX_FUZZ_CHECK(graph2.live_size() == graph.live_size(),
                   "round trip changed live size");
  return 0;
}
