// Standalone driver for the fuzz targets, used when the toolchain has
// no libFuzzer (-fsanitize=fuzzer). Mimics the libFuzzer CLI closely
// enough that CI and local commands are identical across toolchains:
//
//   fuzz_parser corpus_dir ...          replay every file, then mutate
//   fuzz_parser -max_total_time=60 dir  time-boxed random + mutation run
//   fuzz_parser file                    replay one input
//
// Unknown '-' options are ignored (libFuzzer parity). This is a smoke
// driver, not a coverage-guided fuzzer: it replays the corpus, then
// spends the time budget on random bytes and corpus mutations under
// whatever sanitizers the build enabled.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

using Input = std::vector<uint8_t>;

bool ReadFile(const std::filesystem::path& path, Input* out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  out->assign(std::istreambuf_iterator<char>(f),
              std::istreambuf_iterator<char>());
  return true;
}

void RunOne(const Input& input) {
  LLVMFuzzerTestOneInput(input.data(), input.size());
}

Input Mutate(const Input& seed, std::mt19937_64& rng) {
  Input out = seed;
  const int kind = static_cast<int>(rng() % 4);
  if (out.empty() || kind == 0) {
    // Append random bytes.
    const size_t n = 1 + rng() % 16;
    for (size_t i = 0; i < n; ++i) {
      out.push_back(static_cast<uint8_t>(rng()));
    }
    return out;
  }
  switch (kind) {
    case 1:  // flip bytes
      for (size_t i = 0, n = 1 + rng() % 8; i < n; ++i) {
        out[rng() % out.size()] = static_cast<uint8_t>(rng());
      }
      break;
    case 2:  // truncate
      out.resize(rng() % out.size());
      break;
    default:  // duplicate a slice
      {
        const size_t at = rng() % out.size();
        const size_t len = 1 + rng() % (out.size() - at);
        out.insert(out.end(), out.begin() + static_cast<ptrdiff_t>(at),
                   out.begin() + static_cast<ptrdiff_t>(at + len));
      }
      break;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<Input> corpus;
  long max_total_time = 0;
  size_t replayed = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("-max_total_time=", 0) == 0) {
      max_total_time = std::strtol(arg.c_str() + 16, nullptr, 10);
      continue;
    }
    if (arg == "--smoke" && i + 1 < argc) {
      max_total_time = std::strtol(argv[++i], nullptr, 10);
      continue;
    }
    if (!arg.empty() && arg[0] == '-') continue;  // libFuzzer flag parity

    std::filesystem::path path(arg);
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(path, ec)) {
        Input input;
        if (entry.is_regular_file() && ReadFile(entry.path(), &input)) {
          RunOne(input);
          corpus.push_back(std::move(input));
          ++replayed;
        }
      }
    } else {
      Input input;
      if (!ReadFile(path, &input)) {
        std::fprintf(stderr, "cannot read %s\n", arg.c_str());
        return 2;
      }
      RunOne(input);
      corpus.push_back(std::move(input));
      ++replayed;
    }
  }
  std::fprintf(stderr, "standalone: replayed %zu corpus inputs\n", replayed);

  if (max_total_time > 0) {
    std::mt19937_64 rng(0x5eed);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(max_total_time);
    uint64_t execs = 0;
    while (std::chrono::steady_clock::now() < deadline) {
      Input input;
      if (!corpus.empty() && rng() % 4 != 0) {
        input = Mutate(corpus[rng() % corpus.size()], rng);
      } else {
        input.resize(rng() % 512);
        for (uint8_t& b : input) b = static_cast<uint8_t>(rng());
      }
      RunOne(input);
      ++execs;
    }
    std::fprintf(stderr, "standalone: %llu random/mutated executions\n",
                 static_cast<unsigned long long>(execs));
  }
  return 0;
}
