// Shared helpers for the fuzz harnesses: a bounded byte reader that
// turns the fuzzer's input into integers/choices, and an abort-on-error
// check macro (a fuzzer "finding" is a crash, so failed expectations
// abort with a message instead of returning).
#ifndef RDFTX_FUZZ_FUZZ_UTIL_H_
#define RDFTX_FUZZ_FUZZ_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace rdftx::fuzz {

/// Consumes the fuzzer input front to back; returns zeros once drained,
/// so harness behavior is a pure function of the input bytes.
class FuzzInput {
 public:
  FuzzInput(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  size_t remaining() const { return size_ - pos_; }
  bool empty() const { return pos_ >= size_; }

  uint8_t U8() { return empty() ? 0 : data_[pos_++]; }

  uint64_t U64() {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | U8();
    return v;
  }

  bool Bool() { return (U8() & 1) != 0; }

  /// Uniform-ish pick in [0, n); n must be > 0.
  uint64_t Pick(uint64_t n) { return U64() % n; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

#define RDFTX_FUZZ_CHECK(cond, ...)                              \
  do {                                                           \
    if (!(cond)) {                                               \
      std::fprintf(stderr, "FUZZ CHECK FAILED: %s\n  ", #cond);  \
      std::fprintf(stderr, __VA_ARGS__);                         \
      std::fprintf(stderr, "\n");                                \
      std::abort();                                              \
    }                                                            \
  } while (0)

}  // namespace rdftx::fuzz

#endif  // RDFTX_FUZZ_FUZZ_UTIL_H_
