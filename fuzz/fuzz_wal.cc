// WAL replay fuzzer: the input bytes ARE a log segment. Replay must
// never crash, hang, or trip a sanitizer on any byte sequence — a WAL
// file crosses a trust boundary (it is whatever a crash left on disk),
// so every outcome must be a Status or a clean torn-tail stop.
//
// When a buffer replays, the harness checks the replay contract: LSNs
// strictly consecutive, valid_bytes never past the end, torn_tail set
// exactly when bytes were left over — and re-encodes the replayed
// records into a fresh log, which must replay back byte-identically
// (the accepted prefix of a log is itself a valid log).
#include <cstdint>
#include <vector>

#include "fuzz_util.h"
#include "storage/wal.h"

namespace {

bool SameRecord(const rdftx::storage::WalRecord& a,
                const rdftx::storage::WalRecord& b) {
  return a.lsn == b.lsn && a.type == b.type && a.triple == b.triple &&
         a.time == b.time && a.term_id == b.term_id && a.term == b.term;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using rdftx::storage::WalRecord;
  using rdftx::storage::WalReplayResult;

  std::vector<WalRecord> records;
  WalReplayResult result;
  const rdftx::Status st = rdftx::storage::ReplayWal(
      data, size,
      [&](const WalRecord& r) {
        records.push_back(r);
        return rdftx::Status::OK();
      },
      &result);
  if (!st.ok()) {
    // Rejected with a Status: the only acceptable failure mode. The
    // partial replay state must still be coherent.
    RDFTX_FUZZ_CHECK(result.valid_bytes <= size,
                     "valid_bytes ran past the buffer on error");
    return 0;
  }

  RDFTX_FUZZ_CHECK(result.valid_bytes <= size, "valid_bytes past the buffer");
  RDFTX_FUZZ_CHECK(result.torn_tail == (result.valid_bytes < size),
                   "torn_tail disagrees with valid_bytes");
  RDFTX_FUZZ_CHECK(result.records == records.size(),
                   "record count disagrees with callback count");
  for (size_t i = 1; i < records.size(); ++i) {
    RDFTX_FUZZ_CHECK(records[i].lsn == records[i - 1].lsn + 1,
                     "replayed LSNs are not consecutive");
  }
  if (!records.empty()) {
    RDFTX_FUZZ_CHECK(result.last_lsn == records.back().lsn,
                     "last_lsn disagrees with the last record");
  }

  // Round trip: the accepted records re-encode into a log that replays
  // to exactly the same history, with no torn tail.
  std::vector<uint8_t> reencoded;
  rdftx::storage::EncodeWalHeader(&reencoded);
  for (const WalRecord& r : records) {
    rdftx::storage::EncodeWalRecord(r, &reencoded);
  }
  std::vector<WalRecord> again;
  WalReplayResult result2;
  const rdftx::Status st2 = rdftx::storage::ReplayWal(
      reencoded.data(), reencoded.size(),
      [&](const WalRecord& r) {
        again.push_back(r);
        return rdftx::Status::OK();
      },
      &result2);
  RDFTX_FUZZ_CHECK(st2.ok(), "re-encoded log failed to replay: %s",
                   st2.ToString().c_str());
  RDFTX_FUZZ_CHECK(!result2.torn_tail, "re-encoded log has a torn tail");
  RDFTX_FUZZ_CHECK(again.size() == records.size(),
                   "re-encoded log replayed a different record count");
  for (size_t i = 0; i < records.size(); ++i) {
    RDFTX_FUZZ_CHECK(SameRecord(records[i], again[i]),
                     "re-encoded log changed record %zu", i);
  }
  return 0;
}
