// LeafBlock fuzzer: drives one block through appends, closes, caps,
// purges, and representation flips while mirroring every operation into
// a plain std::vector<Entry> shadow model. After each step the block
// must decode to exactly the shadow — this hammers the delta encoder's
// header/te-rule selection (paper §4.2.1), including extreme key values
// whose deltas don't fit the compact paths.
#include <algorithm>
#include <cstdint>
#include <vector>

#include "fuzz_util.h"
#include "mvbt/key.h"
#include "mvbt/leaf_block.h"

namespace {

using rdftx::Chronon;
using rdftx::mvbt::Entry;
using rdftx::mvbt::Key3;
using rdftx::mvbt::LeafBlock;

void CheckMatchesShadow(const LeafBlock& block,
                        const std::vector<Entry>& shadow) {
  RDFTX_FUZZ_CHECK(block.count() == shadow.size(),
                   "count %zu vs shadow %zu", block.count(), shadow.size());
  const std::vector<Entry> decoded = block.Decode();
  RDFTX_FUZZ_CHECK(decoded.size() == shadow.size(),
                   "decoded %zu entries, shadow has %zu", decoded.size(),
                   shadow.size());
  for (size_t i = 0; i < shadow.size(); ++i) {
    RDFTX_FUZZ_CHECK(decoded[i] == shadow[i],
                     "entry %zu mismatch: (%s,[%u,%u)) vs (%s,[%u,%u))", i,
                     decoded[i].key.ToString().c_str(), decoded[i].start,
                     decoded[i].end, shadow[i].key.ToString().c_str(),
                     shadow[i].start, shadow[i].end);
  }
}

// Key components mixing small values with extremes near UINT64_MAX, so
// deltas overflow the compact encodings in both directions.
uint64_t PickComponent(rdftx::fuzz::FuzzInput& in) {
  switch (in.U8() % 4) {
    case 0:
      return in.U8() % 8;
    case 1:
      return in.U8();
    case 2:
      return UINT64_MAX - in.U8() % 8;
    default:
      return in.U64();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  rdftx::fuzz::FuzzInput in(data, size);
  LeafBlock block;
  std::vector<Entry> shadow;
  Chronon t = static_cast<Chronon>(in.U8());

  size_t ops = 0;
  while (!in.empty() && ops < 512) {
    ++ops;
    switch (in.U8() % 8) {
      case 0:
      case 1:
      case 2: {  // append (nondecreasing start, mostly live)
        t += in.U8() % 4;
        Entry e;
        e.key = Key3{PickComponent(in), PickComponent(in), PickComponent(in)};
        e.start = t;
        // Occasionally append an already-closed entry (version split
        // copies do this), with end >= start and sometimes end == start.
        if (in.U8() % 4 == 0) e.end = t + in.U8() % 3;
        // Block precondition (guaranteed by the MVBT): at most one live
        // entry per key. A duplicate of a live key is appended closed.
        for (const Entry& s : shadow) {
          if (s.live() && s.key == e.key && e.live()) e.end = t + in.U8() % 3;
        }
        block.Append(e);
        shadow.push_back(e);
        break;
      }
      case 3: {  // close a live entry picked from the shadow
        std::vector<size_t> live;
        for (size_t i = 0; i < shadow.size(); ++i) {
          if (shadow[i].live()) live.push_back(i);
        }
        Chronon te = t + in.U8() % 3;
        Key3 key = live.empty()
                       ? Key3{in.U8(), in.U8(), in.U8()}
                       : shadow[live[in.Pick(live.size())]].key;
        const bool got = block.CloseEntry(key, te);
        // Shadow semantics: close the live entry with this key, if any.
        bool want = false;
        for (Entry& e : shadow) {
          if (e.live() && e.key == key) {
            e.end = te;
            want = true;
            break;
          }
        }
        RDFTX_FUZZ_CHECK(got == want, "CloseEntry: block=%d shadow=%d",
                         got ? 1 : 0, want ? 1 : 0);
        t = te;
        break;
      }
      case 4: {  // cap all live entries (version-split copy path)
        std::vector<Key3> extracted;
        block.CapLiveEntries(t, &extracted);
        std::vector<Key3> want;
        for (Entry& e : shadow) {
          if (e.live()) {
            e.end = t;
            want.push_back(e.key);
          }
        }
        std::sort(extracted.begin(), extracted.end());
        std::sort(want.begin(), want.end());
        RDFTX_FUZZ_CHECK(extracted == want,
                         "CapLiveEntries extracted %zu keys, shadow %zu",
                         extracted.size(), want.size());
        break;
      }
      case 5: {  // purge zero-length entries (same-version reorg path)
        block.PurgeEmptyEntries();
        std::erase_if(shadow, [](const Entry& e) { return e.start == e.end; });
        break;
      }
      case 6: {  // FindLive cross-check on an arbitrary key
        Key3 key = shadow.empty()
                       ? Key3{in.U8(), in.U8(), in.U8()}
                       : shadow[in.Pick(shadow.size())].key;
        Entry found;
        const bool got = block.FindLive(key, &found);
        const Entry* want = nullptr;
        for (const Entry& e : shadow) {
          if (e.live() && e.key == key) {
            want = &e;
            break;
          }
        }
        RDFTX_FUZZ_CHECK(got == (want != nullptr), "FindLive: block=%d",
                         got ? 1 : 0);
        if (want != nullptr) {
          RDFTX_FUZZ_CHECK(found == *want, "FindLive returned wrong entry");
        }
        break;
      }
      case 7: {  // flip representation
        if (in.Bool()) {
          block.Compress();
          RDFTX_FUZZ_CHECK(block.compressed() || block.count() == 0,
                           "Compress left a nonempty block plain");
        } else {
          block.Decompress();
          RDFTX_FUZZ_CHECK(!block.compressed(), "Decompress left compressed");
        }
        break;
      }
    }
    CheckMatchesShadow(block, shadow);
  }
  // Final round-trip through both representations.
  block.Compress();
  CheckMatchesShadow(block, shadow);
  block.Decompress();
  CheckMatchesShadow(block, shadow);
  return 0;
}
