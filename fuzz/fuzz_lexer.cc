// Lexer fuzzer: Tokenize must never crash or trip UB on arbitrary
// bytes, and on success must produce a well-formed token stream.
#include <cstdint>
#include <string_view>

#include "fuzz_util.h"
#include "sparqlt/lexer.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);
  auto tokens = rdftx::sparqlt::Tokenize(input);
  if (!tokens.ok()) {
    // Errors must be structured ParseErrors, never other categories.
    RDFTX_FUZZ_CHECK(
        tokens.status().code() == rdftx::StatusCode::kParseError,
        "lexer error has code %d", static_cast<int>(tokens.status().code()));
    return 0;
  }
  RDFTX_FUZZ_CHECK(!tokens->empty(), "ok lex with no tokens");
  RDFTX_FUZZ_CHECK(tokens->back().kind == rdftx::sparqlt::TokenKind::kEof,
                   "token stream does not end with EOF");
  size_t prev_offset = 0;
  for (const rdftx::sparqlt::Token& t : *tokens) {
    RDFTX_FUZZ_CHECK(t.offset <= size, "token offset %zu beyond input %zu",
                     t.offset, size);
    RDFTX_FUZZ_CHECK(t.offset >= prev_offset,
                     "token offsets not nondecreasing");
    prev_offset = t.offset;
  }
  return 0;
}
