// lock-order: every util::Mutex in src/ carries an acquisition
// annotation; the declared order graph is acyclic; every
// intra-function multi-lock scope respects it; and — new in the
// interprocedural engine — calling a function whose transitive
// may-acquire set violates the declared order or a LEAF_MUTEX
// contract while holding a mutex is flagged at the call site.
//
// Same-name re-acquisition through a call chain is deliberately NOT
// reported: two instances of the same member mutex share a qualified
// name, and the runtime lock-order detector (src/util/mutex.cc)
// already covers per-instance recursion. DESIGN.md §12.5 records the
// trade-off.

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "clang/AST/Attr.h"
#include "clang/AST/RecursiveASTVisitor.h"
#include "tools/analyzer/analyzer.h"
#include "tools/analyzer/callgraph.h"
#include "tools/analyzer/summaries.h"

namespace rdftx_analyzer {
namespace {

using namespace clang;

struct HeldLock {
  const ValueDecl* decl;
  SourceLocation loc;
  bool manual;  // explicit Lock(): survives the enclosing compound
};

class LockOrderTu : public RecursiveASTVisitor<LockOrderTu> {
 public:
  explicit LockOrderTu(TuContext& tu) : tu_(tu) {}

  void Run(ASTContext& ctx) {
    TraverseDecl(ctx.getTranslationUnitDecl());
    for (const FunctionDecl* fn : bodies_) {
      cur_summary_ = tu_.SummaryFor(fn);
      std::vector<HeldLock> held;
      WalkLockScopes(fn->getBody(), &held);
      if (cur_summary_ != nullptr) {
        for (const HeldLock& h : held) {
          if (h.manual) {
            cur_summary_->held_on_exit.insert(
                h.decl->getQualifiedNameAsString());
          }
        }
      }
      cur_summary_ = nullptr;
    }
  }

  bool VisitFieldDecl(FieldDecl* fd) {
    HandleMutexDecl(fd);
    return true;
  }

  bool VisitVarDecl(VarDecl* vd) {
    if (vd->hasGlobalStorage() && !isa<ParmVarDecl>(vd)) HandleMutexDecl(vd);
    return true;
  }

  bool VisitFunctionDecl(FunctionDecl* fn) {
    if (fn->doesThisDeclarationHaveABody() && fn->getBody() != nullptr &&
        tu_.InScope(fn->getBeginLoc())) {
      bodies_.push_back(fn);
    }
    return true;
  }

 private:
  void HandleMutexDecl(ValueDecl* d) {
    if (!IsUtilMutex(d->getType())) return;
    if (!tu_.InScope(d->getLocation())) return;
    const std::string name = d->getQualifiedNameAsString();
    LockNodeRec node;
    node.name = name;
    std::string file;
    if (tu_.Locate(d->getLocation(), &file, &node.line, &node.col)) {
      node.file = tu_.DisplayPath(file);
    }
    bool annotated = false;
    for (const auto* attr : d->specific_attrs<AcquiredBeforeAttr>()) {
      annotated = true;
      for (const Expr* arg : attr->args()) {
        if (const ValueDecl* other = ResolveMutexRef(arg)) {
          node.succ.insert(other->getQualifiedNameAsString());
        }
      }
    }
    for (const auto* attr : d->specific_attrs<AcquiredAfterAttr>()) {
      annotated = true;
      for (const Expr* arg : attr->args()) {
        if (const ValueDecl* other = ResolveMutexRef(arg)) {
          // Reversed edge: other is acquired before this mutex.
          LockNodeRec rev;
          rev.name = other->getQualifiedNameAsString();
          rev.succ.insert(name);
          tu_.record().lock_nodes.push_back(std::move(rev));
        }
      }
    }
    for (const auto* attr : d->specific_attrs<AnnotateAttr>()) {
      if (attr->getAnnotation() == "rdftx::leaf_mutex") {
        annotated = node.leaf = true;
      } else if (attr->getAnnotation() == "rdftx::interior_mutex") {
        annotated = node.interior = true;
      }
    }
    if (!annotated) {
      tu_.Emit(d->getLocation(), "lock-order",
               "util::Mutex '" + name +
                   "' lacks an acquisition-order annotation; mark it "
                   "LEAF_MUTEX or INTERIOR_MUTEX, or relate it with "
                   "ACQUIRED_BEFORE/ACQUIRED_AFTER");
    }
    tu_.record().lock_nodes.push_back(std::move(node));
  }

  void WalkLockScopes(const Stmt* s, std::vector<HeldLock>* held) {
    if (s == nullptr) return;
    if (const auto* cs = dyn_cast<CompoundStmt>(s)) {
      const size_t mark = held->size();
      for (const Stmt* c : cs->body()) WalkLockScopes(c, held);
      // RAII guards declared in this compound release here; explicit
      // Lock() calls persist until their Unlock() or function exit.
      std::vector<HeldLock> keep;
      for (size_t i = 0; i < held->size(); ++i) {
        if (i < mark || (*held)[i].manual) keep.push_back((*held)[i]);
      }
      held->swap(keep);
      return;
    }
    if (const auto* ds = dyn_cast<DeclStmt>(s)) {
      for (const Decl* d : ds->decls()) {
        const auto* vd = dyn_cast<VarDecl>(d);
        if (vd == nullptr || !IsMutexGuard(vd->getType())) continue;
        const Expr* init = vd->getInit();
        if (init == nullptr) continue;
        if (const auto* ewc = dyn_cast<ExprWithCleanups>(init)) {
          init = ewc->getSubExpr();
        }
        init = init->IgnoreParenImpCasts();
        if (const auto* ctor = dyn_cast<CXXConstructExpr>(init)) {
          if (ctor->getNumArgs() >= 1) {
            if (const ValueDecl* mu = ResolveMutexRef(ctor->getArg(0))) {
              OnAcquire(mu, vd->getLocation(), /*manual=*/false, held);
            }
          }
        }
      }
      return;
    }
    if (const auto* mc = dyn_cast<CXXMemberCallExpr>(s)) {
      const CXXMethodDecl* md = mc->getMethodDecl();
      if (md != nullptr && md->getDeclName().isIdentifier() &&
          IsUtilMutexRecord(md->getParent())) {
        const ValueDecl* mu = ResolveMutexRef(mc->getImplicitObjectArgument());
        if (mu != nullptr) {
          if (md->getName() == "Lock") {
            OnAcquire(mu, mc->getExprLoc(), /*manual=*/true, held);
          } else if (md->getName() == "Unlock") {
            for (auto it = held->rbegin(); it != held->rend(); ++it) {
              if (it->decl == mu) {
                held->erase(std::next(it).base());
                break;
              }
            }
          }
          for (const Stmt* c : s->children()) WalkLockScopes(c, held);
          return;
        }
      }
    }
    if (const auto* call = dyn_cast<CallExpr>(s)) {
      HandleCallUnderLocks(call, *held);
    }
    for (const Stmt* c : s->children()) WalkLockScopes(c, held);
  }

  void OnAcquire(const ValueDecl* mu, SourceLocation loc, bool manual,
                 std::vector<HeldLock>* held) {
    const std::string b = mu->getQualifiedNameAsString();
    if (cur_summary_ != nullptr) cur_summary_->may_acquire.insert(b);
    if (!held->empty()) {
      const HeldLock& top = held->back();
      const std::string a = top.decl->getQualifiedNameAsString();
      if (top.decl == mu) {
        tu_.Emit(loc, "lock-order",
                 "recursive acquisition of '" + b +
                     "'; util::Mutex is not reentrant");
      } else {
        // Order verdicts need the fully merged declared-order graph;
        // defer to the global phase.
        Obligation ob;
        ob.check = "lock-order";
        ob.kind = "pair";
        ob.detail = b;   // acquired
        ob.detail2 = a;  // already held
        if (tu_.Describe(loc, "lock-order", &ob.file, &ob.line, &ob.col,
                         &ob.suppressed)) {
          tu_.record().obligations.push_back(std::move(ob));
        }
      }
    }
    held->push_back(HeldLock{mu, loc, manual});
  }

  void HandleCallUnderLocks(const CallExpr* call,
                            const std::vector<HeldLock>& held) {
    if (held.empty()) return;
    const FunctionDecl* callee = call->getDirectCallee();
    if (callee == nullptr) return;
    if (const auto* md = dyn_cast<CXXMethodDecl>(callee)) {
      const CXXRecordDecl* rec = md->getParent();
      if (IsUtilMutexRecord(rec) ||
          (rec != nullptr && rec->getName() == "MutexLock")) {
        return;  // the lock machinery itself
      }
    }
    const std::string usr = UsrOf(callee);
    if (usr.empty()) return;
    for (const HeldLock& h : held) {
      Obligation ob;
      ob.check = "lock-order";
      ob.kind = "call";
      ob.callee_usr = usr;
      ob.detail = h.decl->getQualifiedNameAsString();
      ob.detail2 = QualifiedName(callee);
      if (tu_.Describe(call->getExprLoc(), "lock-order", &ob.file, &ob.line,
                       &ob.col, &ob.suppressed)) {
        tu_.record().obligations.push_back(std::move(ob));
      }
    }
  }

  TuContext& tu_;
  std::vector<const FunctionDecl*> bodies_;
  FunctionSummary* cur_summary_ = nullptr;
};

// Declared-order cycle check over the merged graph.
void CheckLockGraphAcyclic(GlobalContext& g) {
  const auto& graph = g.LockGraph();
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  for (const auto& [name, node] : graph) {
    if (color[name] != 0) continue;
    std::vector<std::pair<std::string, std::vector<std::string>>> stack;
    auto succsOf = [&graph](const std::string& n) {
      auto it = graph.find(n);
      std::vector<std::string> out;
      if (it != graph.end()) {
        out.assign(it->second.succ.begin(), it->second.succ.end());
      }
      return out;
    };
    color[name] = 1;
    stack.emplace_back(name, succsOf(name));
    std::vector<std::string> path{name};
    while (!stack.empty()) {
      auto& [cur, succs] = stack.back();
      if (succs.empty()) {
        color[cur] = 2;
        stack.pop_back();
        path.pop_back();
        continue;
      }
      std::string next = succs.back();
      succs.pop_back();
      if (color[next] == 1) {
        // Reconstruct readably: next -> ... -> cur -> next.
        std::string trace = next;
        bool collecting = false;
        for (const std::string& p : path) {
          if (p == next) {
            collecting = true;
            continue;
          }
          if (collecting) trace += " -> " + p;
        }
        trace += " -> " + next;
        auto it = graph.find(next);
        if (it != graph.end()) {
          const LockNodeRec& at = it->second;
          g.EmitGlobal(Finding{
              at.file, at.line, at.col, "lock-order",
              "declared acquisition order contains a cycle: " + trace});
        }
        continue;
      }
      if (color[next] == 0) {
        color[next] = 1;
        path.push_back(next);
        stack.emplace_back(next, succsOf(next));
      }
    }
  }
}

class LockOrderCheck : public Check {
 public:
  llvm::StringRef name() const override { return "lock-order"; }

  void RunOnTu(TuContext& tu) override { LockOrderTu(tu).Run(tu.ast()); }

  void RunGlobal(GlobalContext& g) override {
    CheckLockGraphAcyclic(g);
    for (const Obligation& ob : g.Obligations()) {
      if (ob.check != "lock-order" || ob.suppressed) continue;
      if (ob.kind == "pair") {
        const std::string& b = ob.detail;   // acquired
        const std::string& a = ob.detail2;  // held
        if (g.DeclaredBefore(b, a)) {
          g.EmitGlobal(Finding{
              ob.file, ob.line, ob.col, "lock-order",
              "acquires '" + b + "' while holding '" + a +
                  "', but the declared order is '" + b + "' before '" + a +
                  "'"});
        } else if (g.IsLeafMutex(a)) {
          g.EmitGlobal(Finding{
              ob.file, ob.line, ob.col, "lock-order",
              "acquires '" + b + "' while leaf mutex '" + a +
                  "' is held; LEAF_MUTEX means nothing may be acquired "
                  "under it"});
        } else if (!g.DeclaredBefore(a, b) && !g.IsLeafMutex(b)) {
          g.EmitGlobal(Finding{
              ob.file, ob.line, ob.col, "lock-order",
              "no declared acquisition order permits '" + b + "' under '" +
                  a + "'; add ACQUIRED_BEFORE/ACQUIRED_AFTER or mark '" + b +
                  "' LEAF_MUTEX"});
        }
        continue;
      }
      if (ob.kind != "call") continue;
      const std::set<std::string>& may = g.MayAcquireClosure(ob.callee_usr);
      if (may.empty()) continue;
      const std::string& held = ob.detail;
      bool emitted = false;
      for (const std::string& m : may) {
        if (m == held) continue;  // same-name recursion: see file comment
        if (g.DeclaredBefore(m, held)) {
          g.EmitGlobal(Finding{
              ob.file, ob.line, ob.col, "lock-order",
              "calls '" + ob.detail2 + "' while holding '" + held +
                  "'; its call graph may acquire '" + m +
                  "', but the declared order is '" + m + "' before '" + held +
                  "'"});
          emitted = true;
          break;
        }
      }
      if (!emitted && g.IsLeafMutex(held)) {
        const std::string& m = *may.begin();
        g.EmitGlobal(Finding{
            ob.file, ob.line, ob.col, "lock-order",
            "calls '" + ob.detail2 + "' while holding leaf mutex '" + held +
                "'; its call graph may acquire '" + m +
                "' and LEAF_MUTEX means nothing may be acquired under it"});
      }
    }
  }
};

}  // namespace

std::unique_ptr<Check> MakeLockOrderCheck() {
  return std::make_unique<LockOrderCheck>();
}

}  // namespace rdftx_analyzer
