// durability: in src/storage/ + src/core/, every WalWriter append
// reaches a *Sync* call on every acked path (error branches pruned by
// their ok() tests; branch conditions naming "sync" are audited
// opt-outs); rename/link/raw fopen-for-write are banned outside
// src/util/file_io.cc.
//
// The interprocedural engine replaces the per-function CFG walk with a
// serialized CfgSketch per function (storage/core/util/rdf) whose call
// events are resolved globally: a call to a function proven — by
// fixpoint over the sketches or by SYNCS_ON_ALL_PATHS — to sync on
// every acked path now counts as a sync, so helpers that wrap
// Sync() no longer need the annotation at every call site. Calls with
// no summary still count as non-syncing, exactly like PR 7's walk.

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "clang/AST/ParentMapContext.h"
#include "clang/AST/RecursiveASTVisitor.h"
#include "clang/Analysis/CFG.h"
#include "clang/Lex/Lexer.h"
#include "tools/analyzer/analyzer.h"
#include "tools/analyzer/callgraph.h"
#include "tools/analyzer/summaries.h"

namespace rdftx_analyzer {
namespace {

using namespace clang;

const std::vector<std::string> kSketchDirs = {
    "/src/storage/", "/src/core/", "/src/util/", "/src/rdf/"};
const std::vector<std::string> kAppendDirs = {"/src/storage/", "/src/core/"};

bool IsWalAppend(const Stmt* s) {
  const auto* mc = dyn_cast<CXXMemberCallExpr>(s);
  if (mc == nullptr) return false;
  const CXXMethodDecl* md = mc->getMethodDecl();
  if (md == nullptr || !md->getDeclName().isIdentifier() ||
      md->getName() != "Append") {
    return false;
  }
  const CXXRecordDecl* rec = md->getParent();
  return rec != nullptr && rec->getName().contains("Wal");
}

bool IsSyncCall(const Stmt* s) {
  const auto* call = dyn_cast<CallExpr>(s);
  if (call == nullptr) return false;
  const FunctionDecl* callee = call->getDirectCallee();
  if (callee == nullptr || !callee->getDeclName().isIdentifier()) {
    return false;
  }
  return callee->getName().contains("Sync");
}

class DurabilityTu : public RecursiveASTVisitor<DurabilityTu> {
 public:
  explicit DurabilityTu(TuContext& tu) : tu_(tu) {}

  void Run(ASTContext& ctx) {
    TraverseDecl(ctx.getTranslationUnitDecl());
    for (const FunctionDecl* fn : bodies_) BuildSketch(fn);
  }

  bool VisitFunctionDecl(FunctionDecl* fn) {
    if (fn->doesThisDeclarationHaveABody() && fn->getBody() != nullptr &&
        tu_.InDirScope(fn->getBeginLoc(), kSketchDirs)) {
      bodies_.push_back(fn);
    }
    return true;
  }

  bool VisitCallExpr(CallExpr* call) {
    HandleBannedFileOps(call);
    return true;
  }

 private:
  // ---- banned file mutation primitives (local, unchanged) ---------------

  void HandleBannedFileOps(CallExpr* call) {
    const FunctionDecl* callee = call->getDirectCallee();
    if (callee == nullptr || !callee->getDeclName().isIdentifier()) return;
    if (isa<CXXMethodDecl>(callee)) return;  // member fns named link etc.
    if (!tu_.InScope(call->getExprLoc())) return;
    std::string file;
    unsigned line, col;
    if (!tu_.Locate(call->getExprLoc(), &file, &line, &col)) return;
    constexpr const char* kExempt = "util/file_io.cc";
    if (file.size() >= std::string(kExempt).size() &&
        file.compare(file.size() - std::string(kExempt).size(),
                     std::string::npos, kExempt) == 0) {
      return;
    }
    llvm::StringRef name = callee->getName();
    if (name == "rename" || name == "link") {
      tu_.Emit(call->getExprLoc(), "durability",
               "'" + name.str() +
                   "' outside src/util/file_io.cc bypasses the audited "
                   "mutation path; use util::WriteFileAtomic / "
                   "util::AppendFile");
      return;
    }
    if (name == "fopen" && call->getNumArgs() >= 2) {
      const Expr* mode = call->getArg(1)->IgnoreParenImpCasts();
      if (const auto* lit = dyn_cast<StringLiteral>(mode)) {
        llvm::StringRef m = lit->getString();
        if (m.contains('w') || m.contains('a') || m.contains('+')) {
          tu_.Emit(call->getExprLoc(), "durability",
                   "raw fopen for writing outside src/util/file_io.cc; use "
                   "util::WriteFileAtomic / util::AppendFile");
        }
      }
    }
  }

  // ---- sketch construction ----------------------------------------------

  bool IsDirectlyReturned(const Expr* e) {
    DynTypedNode node = DynTypedNode::create(*e);
    for (int hop = 0; hop < 8; ++hop) {
      DynTypedNodeList parents = tu_.ast().getParents(node);
      if (parents.empty()) return false;
      DynTypedNode parent = parents[0];
      if (parent.get<ReturnStmt>() != nullptr) return true;
      if (parent.get<CompoundStmt>() != nullptr ||
          parent.get<Decl>() != nullptr) {
        return false;
      }
      node = parent;
    }
    return false;
  }

  // Successors worth following out of `b`. Branches testing a
  // *sync*-named condition are audited opt-outs (pruned entirely);
  // the failing side of an ok() test is an error return, not an ack.
  std::vector<const CFGBlock*> AckSuccessors(const CFGBlock* b) {
    std::vector<const CFGBlock*> all;
    for (const CFGBlock::AdjacentBlock& adj : b->succs()) {
      if (const CFGBlock* s = adj) all.push_back(s);
    }
    const Stmt* cond = const_cast<CFGBlock*>(b)->getTerminatorCondition();
    if (cond == nullptr || all.size() != 2) return all;
    CharSourceRange range =
        CharSourceRange::getTokenRange(cond->getSourceRange());
    std::string text = Lower(
        Lexer::getSourceText(range, tu_.sm(), tu_.ast().getLangOpts()).str());
    if (text.find("sync") != std::string::npos) return {};
    const Expr* ce = dyn_cast<Expr>(cond);
    if (ce == nullptr) return all;
    const Expr* stripped = ce->IgnoreParenImpCasts();
    bool negated = false;
    if (const auto* uo = dyn_cast<UnaryOperator>(stripped)) {
      if (uo->getOpcode() == UO_LNot) {
        negated = true;
        stripped = uo->getSubExpr()->IgnoreParenImpCasts();
      }
    }
    if (const auto* mc = dyn_cast<CXXMemberCallExpr>(stripped)) {
      const CXXMethodDecl* md = mc->getMethodDecl();
      if (md != nullptr && md->getDeclName().isIdentifier() &&
          md->getName() == "ok") {
        // succs[0] is the true branch. `!x.ok()` true → error path;
        // `x.ok()` false → error path. Prune the error side.
        return {negated ? all[1] : all[0]};
      }
    }
    return all;
  }

  void BuildSketch(const FunctionDecl* fn) {
    FunctionSummary* summary = tu_.SummaryFor(fn);
    if (summary == nullptr) return;
    std::unique_ptr<CFG> cfg =
        CFG::buildCFG(fn, fn->getBody(), &tu_.ast(), CFG::BuildOptions());
    if (cfg == nullptr) return;
    const bool append_scope =
        tu_.InDirScope(fn->getBeginLoc(), kAppendDirs);
    CfgSketch sketch;
    sketch.blocks.resize(cfg->getNumBlockIDs());
    sketch.entry = static_cast<int>(cfg->getEntry().getBlockID());
    sketch.exit = static_cast<int>(cfg->getExit().getBlockID());
    for (const CFGBlock* b : *cfg) {
      CfgSketch::Block& blk = sketch.blocks[b->getBlockID()];
      for (size_t i = 0; i < b->size(); ++i) {
        auto cs = (*b)[i].getAs<CFGStmt>();
        if (!cs) continue;
        const Stmt* s = cs->getStmt();
        if (IsSyncCall(s)) {
          SketchEvent ev;
          ev.kind = SketchEvent::kSync;
          blk.events.push_back(std::move(ev));
          continue;
        }
        if (IsWalAppend(s)) {
          if (!append_scope) continue;
          const auto* mc = cast<CXXMemberCallExpr>(s);
          SketchEvent ev;
          ev.kind = SketchEvent::kAppend;
          ev.tail_return = IsDirectlyReturned(mc);
          if (tu_.Describe(mc->getExprLoc(), "durability", &ev.file,
                           &ev.line, &ev.col, &ev.suppressed)) {
            blk.events.push_back(std::move(ev));
          }
          continue;
        }
        if (const auto* call = dyn_cast<CallExpr>(s)) {
          const FunctionDecl* callee = call->getDirectCallee();
          if (callee == nullptr) continue;
          SketchEvent ev;
          // A body-less SYNCS_ON_ALL_PATHS declaration never grows a
          // summary; honour the annotation at sketch time so the call
          // satisfies the obligation exactly like PR 7's walk did.
          if (HasAnnotation(callee, "rdftx::syncs_on_all_paths")) {
            ev.kind = SketchEvent::kSync;
            blk.events.push_back(std::move(ev));
            continue;
          }
          const std::string usr = UsrOf(callee);
          if (usr.empty()) continue;
          ev.kind = SketchEvent::kCall;
          ev.usr = usr;
          blk.events.push_back(std::move(ev));
        }
      }
      for (const CFGBlock* s : AckSuccessors(b)) {
        blk.succs.push_back(static_cast<int>(s->getBlockID()));
      }
    }
    summary->sketch = std::move(sketch);
  }

  TuContext& tu_;
  std::vector<const FunctionDecl*> bodies_;
};

class DurabilityCheck : public Check {
 public:
  llvm::StringRef name() const override { return "durability"; }

  void RunOnTu(TuContext& tu) override { DurabilityTu(tu).Run(tu.ast()); }

  void RunGlobal(GlobalContext& g) override {
    for (const FunctionSummary* f : g.AllSummaries()) {
      if (!f->sketch.valid()) continue;
      const CfgSketch& sk = f->sketch;
      for (size_t bi = 0; bi < sk.blocks.size(); ++bi) {
        const CfgSketch::Block& blk = sk.blocks[bi];
        for (size_t ei = 0; ei < blk.events.size(); ++ei) {
          const SketchEvent& ev = blk.events[ei];
          if (ev.kind != SketchEvent::kAppend) continue;
          // A tail `return wal_.Append(...)` hands the sync obligation
          // to the caller along with the status.
          if (ev.tail_return || ev.suppressed) continue;
          if (UnsyncedPathToExit(g, sk, static_cast<int>(bi), ei + 1)) {
            g.EmitGlobal(Finding{
                ev.file, ev.line, ev.col, "durability",
                "WAL append can reach function exit without a Sync() on an "
                "acked path; sync before acknowledging, or gate the fast "
                "path on a *sync* option"});
          }
        }
      }
    }
  }

 private:
  static bool IsSyncEvent(GlobalContext& g, const SketchEvent& ev) {
    if (ev.kind == SketchEvent::kSync) return true;
    return ev.kind == SketchEvent::kCall && g.SyncsOnAllPaths(ev.usr);
  }

  static bool BlockSyncsFrom(GlobalContext& g, const CfgSketch::Block& blk,
                             size_t start) {
    for (size_t i = start; i < blk.events.size(); ++i) {
      if (IsSyncEvent(g, blk.events[i])) return true;
    }
    return false;
  }

  static bool UnsyncedPathToExit(GlobalContext& g, const CfgSketch& sk,
                                 int home, size_t afterIdx) {
    if (BlockSyncsFrom(g, sk.blocks[home], afterIdx)) return false;
    std::set<int> seen;
    std::vector<int> stack(sk.blocks[home].succs.begin(),
                           sk.blocks[home].succs.end());
    while (!stack.empty()) {
      int b = stack.back();
      stack.pop_back();
      if (!seen.insert(b).second) continue;
      if (b == sk.exit) return true;
      if (b < 0 || b >= static_cast<int>(sk.blocks.size())) continue;
      if (BlockSyncsFrom(g, sk.blocks[b], 0)) continue;
      for (int s : sk.blocks[b].succs) stack.push_back(s);
    }
    return false;
  }
};

}  // namespace

std::unique_ptr<Check> MakeDurabilityCheck() {
  return std::make_unique<DurabilityCheck>();
}

}  // namespace rdftx_analyzer
