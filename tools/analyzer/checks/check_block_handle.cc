// block-handle: engine::BindingBlock ownership is RAII through
// BlockHandle — no `new BindingBlock`, no BlockHandle discarded as an
// unused prvalue, no .get() on a temporary handle. Interprocedurally,
// a helper that returns the raw pointer of a BlockHandle parameter
// (summary: returns_param_derived) makes `Helper(pool.Acquire(n))`
// just as dangling as `pool.Acquire(n).get()` — the temporary handle
// dies at the end of the caller's statement.

#include <memory>
#include <string>
#include <vector>

#include "clang/AST/RecursiveASTVisitor.h"
#include "tools/analyzer/analyzer.h"
#include "tools/analyzer/callgraph.h"
#include "tools/analyzer/summaries.h"

namespace rdftx_analyzer {
namespace {

using namespace clang;

bool IsBlockHandleType(QualType t) {
  return IsBlockHandleRecord(RecordOf(t));
}

class BlockHandleTu : public RecursiveASTVisitor<BlockHandleTu> {
 public:
  explicit BlockHandleTu(TuContext& tu) : tu_(tu) {}

  void Run(ASTContext& ctx) {
    TraverseDecl(ctx.getTranslationUnitDecl());
    for (const FunctionDecl* fn : bodies_) {
      CheckDiscards(fn->getBody());
      RecordGetOnParam(fn);
    }
  }

  bool VisitFunctionDecl(FunctionDecl* fn) {
    if (fn->doesThisDeclarationHaveABody() && fn->getBody() != nullptr &&
        tu_.InScope(fn->getBeginLoc())) {
      bodies_.push_back(fn);
    }
    return true;
  }

  bool VisitCXXNewExpr(CXXNewExpr* ne) {
    if (!tu_.InScope(ne->getBeginLoc())) return true;
    if (IsBindingBlockRecord(RecordOf(ne->getAllocatedType()))) {
      tu_.Emit(ne->getBeginLoc(), "block-handle",
               "BindingBlock allocated with new; acquire it from the "
               "BlockPool so a BlockHandle owns it on every path");
    }
    return true;
  }

  bool VisitCallExpr(CallExpr* call) {
    HandleTemporaryGet(call);
    HandleTemporaryThroughHelper(call);
    return true;
  }

 private:
  // `pool.Acquire(n).get()`: the temporary handle releases the block
  // at the end of the full expression, so the raw pointer dangles.
  void HandleTemporaryGet(CallExpr* call) {
    const auto* mc = dyn_cast<CXXMemberCallExpr>(call);
    if (mc == nullptr) return;
    const CXXMethodDecl* md = mc->getMethodDecl();
    if (md == nullptr || !md->getDeclName().isIdentifier() ||
        md->getName() != "get" || !IsBlockHandleRecord(md->getParent())) {
      return;
    }
    if (!tu_.InScope(mc->getExprLoc())) return;
    const Expr* obj = mc->getImplicitObjectArgument();
    if (obj == nullptr) return;
    obj = obj->IgnoreParenImpCasts();
    if (isa<MaterializeTemporaryExpr>(obj) || obj->isPRValue()) {
      tu_.Emit(mc->getExprLoc(), "block-handle",
               "get() on a temporary BlockHandle; the block returns to the "
               "pool when this statement ends — bind the handle to a "
               "variable first");
    }
  }

  // `Helper(pool.Acquire(n))` where Helper's summary says the return
  // derives from that handle parameter.
  void HandleTemporaryThroughHelper(CallExpr* call) {
    if (!tu_.InScope(call->getExprLoc())) return;
    const FunctionDecl* callee = call->getDirectCallee();
    if (callee == nullptr) return;
    if (!callee->getReturnType()->isPointerType()) return;
    const std::string usr = UsrOf(callee);
    if (usr.empty()) return;
    for (unsigned i = 0; i < call->getNumArgs(); ++i) {
      const Expr* arg = StripValuePass(call->getArg(i));
      if (!IsBlockHandleType(arg->getType())) continue;
      if (!isa<MaterializeTemporaryExpr>(arg) && !arg->isPRValue()) continue;
      Obligation ob;
      ob.check = "block-handle";
      ob.kind = "temp-through-helper";
      ob.callee_usr = usr;
      ob.param = static_cast<int>(i);
      ob.detail2 = QualifiedName(callee);
      if (tu_.Describe(call->getExprLoc(), "block-handle", &ob.file,
                       &ob.line, &ob.col, &ob.suppressed)) {
        tu_.record().obligations.push_back(std::move(ob));
      }
    }
  }

  // Summary: `return h.get();` (or a pointer derived from it) where
  // `h` is a BlockHandle parameter.
  void RecordGetOnParam(const FunctionDecl* fn) {
    if (!fn->getReturnType()->isPointerType()) return;
    std::vector<const ReturnStmt*> returns;
    CollectReturns(fn->getBody(), &returns);
    for (const ReturnStmt* rs : returns) {
      const Expr* rv = rs->getRetValue();
      if (rv == nullptr) continue;
      const ParmVarDecl* p = FindHandleParamGet(fn, rv);
      if (p == nullptr) continue;
      if (FunctionSummary* s = tu_.SummaryFor(fn)) {
        s->returns_param_derived.insert(
            static_cast<int>(p->getFunctionScopeIndex()));
      }
    }
  }

  static void CollectReturns(const Stmt* s,
                             std::vector<const ReturnStmt*>* out) {
    if (s == nullptr) return;
    if (isa<LambdaExpr>(s)) return;
    if (const auto* rs = dyn_cast<ReturnStmt>(s)) out->push_back(rs);
    for (const Stmt* c : s->children()) CollectReturns(c, out);
  }

  // A `p.get()` under `e` where p is one of fn's BlockHandle params.
  const ParmVarDecl* FindHandleParamGet(const FunctionDecl* fn,
                                        const Expr* e) {
    if (e == nullptr) return nullptr;
    if (const auto* mc = dyn_cast<CXXMemberCallExpr>(e->IgnoreParenImpCasts())) {
      const CXXMethodDecl* md = mc->getMethodDecl();
      if (md != nullptr && md->getDeclName().isIdentifier() &&
          md->getName() == "get" && IsBlockHandleRecord(md->getParent())) {
        const Expr* obj = mc->getImplicitObjectArgument();
        if (obj != nullptr) {
          if (const auto* dre =
                  dyn_cast<DeclRefExpr>(obj->IgnoreParenImpCasts())) {
            if (const auto* p = dyn_cast<ParmVarDecl>(dre->getDecl())) {
              if (p->getDeclContext() == fn) return p;
            }
          }
        }
      }
    }
    for (const Stmt* c : e->children()) {
      if (const auto* sub = dyn_cast_or_null<Expr>(c)) {
        if (const ParmVarDecl* hit = FindHandleParamGet(fn, sub)) return hit;
      }
    }
    return nullptr;
  }

  // Discarded BlockHandle prvalues (the PR 8 rule, moved here from the
  // status walk so --check=block-handle finds them on its own).
  void CheckDiscards(const Stmt* s) {
    if (s == nullptr) return;
    if (const auto* cs = dyn_cast<CompoundStmt>(s)) {
      for (const Stmt* c : cs->body()) InspectTopLevelExpr(c);
    }
    for (const Stmt* c : s->children()) CheckDiscards(c);
  }

  void InspectTopLevelExpr(const Stmt* c) {
    const auto* e = dyn_cast_or_null<Expr>(c);
    if (e == nullptr || !tu_.InScope(e->getExprLoc())) return;
    const Expr* inner = e->IgnoreParens();
    if (const auto* ewc = dyn_cast<ExprWithCleanups>(inner)) {
      inner = ewc->getSubExpr()->IgnoreParens();
    }
    if (const auto* cast = dyn_cast<ExplicitCastExpr>(inner)) {
      if (cast->getType()->isVoidType()) {
        const Expr* sub = cast->getSubExprAsWritten()->IgnoreParenImpCasts();
        if (IsBlockHandleType(sub->getType())) {
          tu_.Emit(e->getExprLoc(), "block-handle",
                   "BlockHandle discarded; the block returns to the pool "
                   "immediately — hold the handle while the block is in use");
        }
        return;
      }
    }
    if (inner->getValueKind() == VK_PRValue &&
        IsBlockHandleType(inner->getType())) {
      tu_.Emit(e->getExprLoc(), "block-handle",
               "BlockHandle discarded; the block returns to the pool "
               "immediately — hold the handle while the block is in use");
    }
  }

  TuContext& tu_;
  std::vector<const FunctionDecl*> bodies_;
};

class BlockHandleCheck : public Check {
 public:
  llvm::StringRef name() const override { return "block-handle"; }

  void RunOnTu(TuContext& tu) override { BlockHandleTu(tu).Run(tu.ast()); }

  void RunGlobal(GlobalContext& g) override {
    for (const Obligation& ob : g.Obligations()) {
      if (ob.check != "block-handle" || ob.kind != "temp-through-helper" ||
          ob.suppressed) {
        continue;
      }
      const FunctionSummary* s = g.SummaryOf(ob.callee_usr);
      if (s == nullptr || s->returns_param_derived.count(ob.param) == 0) {
        continue;
      }
      g.EmitGlobal(Finding{
          ob.file, ob.line, ob.col, "block-handle",
          "temporary BlockHandle passed to '" + ob.detail2 +
              "' which returns its raw pointer; the block returns to the "
              "pool when this statement ends — bind the handle to a "
              "variable first"});
    }
  }
};

}  // namespace

std::unique_ptr<Check> MakeBlockHandleCheck() {
  return std::make_unique<BlockHandleCheck>();
}

}  // namespace rdftx_analyzer
