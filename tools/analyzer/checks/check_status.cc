// status: rdftx::Status / rdftx::Result discarded through a
// cast-to-void or a bare expression statement — the holes
// [[nodiscard]] + -Werror cannot see through. Interprocedurally, a
// Status/Result *argument* can be discarded through a signature: a
// callee that accepts one by value (or rvalue reference) and never
// reads it swallows the caller's error. The summary records such
// parameters; call sites handing a freshly produced Status/Result to
// one are flagged.

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "clang/AST/RecursiveASTVisitor.h"
#include "tools/analyzer/analyzer.h"
#include "tools/analyzer/callgraph.h"
#include "tools/analyzer/summaries.h"

namespace rdftx_analyzer {
namespace {

using namespace clang;

// Does any DeclRefExpr under `s` name `d`? (Lambda bodies included —
// a captured use is a read.)
bool MentionsDecl(const Stmt* s, const ValueDecl* d) {
  if (s == nullptr) return false;
  if (const auto* dre = dyn_cast<DeclRefExpr>(s)) {
    if (dre->getDecl() == d) return true;
  }
  for (const Stmt* c : s->children()) {
    if (MentionsDecl(c, d)) return true;
  }
  return false;
}

class StatusTu : public RecursiveASTVisitor<StatusTu> {
 public:
  explicit StatusTu(TuContext& tu) : tu_(tu) {}

  void Run(ASTContext& ctx) {
    TraverseDecl(ctx.getTranslationUnitDecl());
    for (const FunctionDecl* fn : bodies_) {
      CheckStatusDiscards(fn->getBody());
      RecordSwallowedParams(fn);
    }
  }

  bool VisitFunctionDecl(FunctionDecl* fn) {
    if (fn->doesThisDeclarationHaveABody() && fn->getBody() != nullptr &&
        tu_.InScope(fn->getBeginLoc())) {
      bodies_.push_back(fn);
    }
    return true;
  }

  bool VisitCallExpr(CallExpr* call) {
    if (!tu_.InScope(call->getExprLoc())) return true;
    const FunctionDecl* callee = call->getDirectCallee();
    if (callee == nullptr) return true;
    const std::string usr = UsrOf(callee);
    if (usr.empty()) return true;
    const unsigned n =
        std::min(call->getNumArgs(), callee->getNumParams());
    for (unsigned i = 0; i < n; ++i) {
      QualType pt = callee->getParamDecl(i)->getType();
      if (pt->isLValueReferenceType()) continue;  // caller keeps a handle
      if (!IsStatusOrResult(pt)) continue;
      // Only freshly produced values: an lvalue argument (even when it
      // reaches the callee through a copy) stays observable here.
      const Expr* arg = StripValuePass(call->getArg(i));
      if (!arg->isPRValue()) continue;
      Obligation ob;
      ob.check = "status";
      ob.kind = "pass-status";
      ob.callee_usr = usr;
      ob.param = static_cast<int>(i);
      ob.detail2 = QualifiedName(callee);
      if (tu_.Describe(call->getExprLoc(), "status", &ob.file, &ob.line,
                       &ob.col, &ob.suppressed)) {
        tu_.record().obligations.push_back(std::move(ob));
      }
    }
    return true;
  }

 private:
  void RecordSwallowedParams(const FunctionDecl* fn) {
    FunctionSummary* summary = nullptr;
    for (unsigned i = 0; i < fn->getNumParams(); ++i) {
      const ParmVarDecl* p = fn->getParamDecl(i);
      QualType t = p->getType();
      if (t->isLValueReferenceType() || t->isPointerType()) continue;
      if (!IsStatusOrResult(t)) continue;
      if (p->getName().empty()) continue;  // deliberately unnamed: skip
      if (MentionsDecl(fn->getBody(), p)) continue;
      if (summary == nullptr) summary = tu_.SummaryFor(fn);
      if (summary != nullptr) {
        summary->swallows_status_params.insert(static_cast<int>(i));
      }
    }
  }

  void CheckStatusDiscards(const Stmt* s) {
    if (s == nullptr) return;
    if (const auto* cs = dyn_cast<CompoundStmt>(s)) {
      for (const Stmt* c : cs->body()) InspectTopLevelExpr(c);
    }
    for (const Stmt* c : s->children()) CheckStatusDiscards(c);
  }

  void InspectTopLevelExpr(const Stmt* c) {
    const auto* e = dyn_cast_or_null<Expr>(c);
    if (e == nullptr || !tu_.InScope(e->getExprLoc())) return;
    const Expr* inner = e->IgnoreParens();
    if (const auto* ewc = dyn_cast<ExprWithCleanups>(inner)) {
      inner = ewc->getSubExpr()->IgnoreParens();
    }
    if (const auto* cast = dyn_cast<ExplicitCastExpr>(inner)) {
      if (cast->getType()->isVoidType()) {
        const Expr* sub = cast->getSubExprAsWritten()->IgnoreParenImpCasts();
        if (IsStatusOrResult(sub->getType())) {
          tu_.Emit(e->getExprLoc(), "status",
                   "Status/Result discarded with a cast to void; call "
                   "IgnoreError() or propagate it");
        }
        return;
      }
    }
    if (inner->getValueKind() == VK_PRValue &&
        IsStatusOrResult(inner->getType())) {
      tu_.Emit(e->getExprLoc(), "status",
               "expression result of type Status/Result is discarded; check "
               "it, propagate it, or call IgnoreError()");
    }
  }

  TuContext& tu_;
  std::vector<const FunctionDecl*> bodies_;
};

class StatusCheck : public Check {
 public:
  llvm::StringRef name() const override { return "status"; }

  void RunOnTu(TuContext& tu) override { StatusTu(tu).Run(tu.ast()); }

  void RunGlobal(GlobalContext& g) override {
    for (const Obligation& ob : g.Obligations()) {
      if (ob.check != "status" || ob.kind != "pass-status" || ob.suppressed) {
        continue;
      }
      const FunctionSummary* s = g.SummaryOf(ob.callee_usr);
      if (s == nullptr || s->swallows_status_params.count(ob.param) == 0) {
        continue;
      }
      g.EmitGlobal(Finding{
          ob.file, ob.line, ob.col, "status",
          "Status/Result passed to '" + ob.detail2 +
              "' which never examines it; the error is silently dropped — "
              "check it at the call site or have the callee propagate it"});
    }
  }
};

}  // namespace

std::unique_ptr<Check> MakeStatusCheck() {
  return std::make_unique<StatusCheck>();
}

}  // namespace rdftx_analyzer
