// result-unwrap: accessing a rdftx::Result's value (value(),
// operator*, operator->) must be dominated by an ok() test on every
// path. The proof is the GuardFacts must-dataflow; interprocedurally,
// a function that unwraps a Result parameter without its own check
// (directly, or by forwarding it through any chain of helpers —
// summary: unwraps_params / forwards_result, closed over by
// GlobalContext::Finalize) obliges every caller to prove ok() at the
// call site. UNWRAPS_RESULT_ARGS asserts the callee contract
// explicitly for functions whose body the analyzer cannot see.
//
// Precision limits (DESIGN.md §12.5): member-field Results are not
// tracked (no alias analysis), and the fact domain keys on local
// variable / parameter subjects only.

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "clang/AST/RecursiveASTVisitor.h"
#include "tools/analyzer/analyzer.h"
#include "tools/analyzer/callgraph.h"
#include "tools/analyzer/dataflow.h"
#include "tools/analyzer/summaries.h"

namespace rdftx_analyzer {
namespace {

using namespace clang;

// Collects unwrap sites and Result-typed call arguments inside one
// function body (lambdas excluded — separate CFG, separate facts).
class BodyScan : public RecursiveASTVisitor<BodyScan> {
 public:
  struct Unwrap {
    const Expr* site;      // the unwrapping expression
    const Expr* receiver;  // the Result being unwrapped
  };
  struct ArgUse {
    const CallExpr* call;
    const Expr* arg;
    unsigned index;
    const FunctionDecl* callee;
  };

  bool TraverseLambdaExpr(LambdaExpr*) { return true; }

  bool VisitCXXMemberCallExpr(CXXMemberCallExpr* mc) {
    const CXXMethodDecl* md = mc->getMethodDecl();
    if (md != nullptr && md->getDeclName().isIdentifier() &&
        md->getName() == "value" && md->getParent() != nullptr &&
        md->getParent()->getName() == "Result" &&
        InNamespace(md->getParent(), "rdftx")) {
      unwraps.push_back(Unwrap{mc, mc->getImplicitObjectArgument()});
    }
    return true;
  }

  bool VisitCXXOperatorCallExpr(CXXOperatorCallExpr* oc) {
    if ((oc->getOperator() == OO_Star || oc->getOperator() == OO_Arrow) &&
        oc->getNumArgs() >= 1 && IsResultType(oc->getArg(0)->getType())) {
      unwraps.push_back(Unwrap{oc, oc->getArg(0)});
    }
    return true;
  }

  bool VisitCallExpr(CallExpr* call) {
    const FunctionDecl* callee = call->getDirectCallee();
    if (callee == nullptr) return true;
    if (isa<CXXOperatorCallExpr>(call)) return true;  // unwraps, not passes
    const unsigned n = std::min(call->getNumArgs(), callee->getNumParams());
    for (unsigned i = 0; i < n; ++i) {
      QualType pt = callee->getParamDecl(i)->getType();
      if (!IsResultType(pt)) continue;
      args.push_back(ArgUse{call, call->getArg(i), i, callee});
    }
    return true;
  }

  std::vector<Unwrap> unwraps;
  std::vector<ArgUse> args;
};

class ResultUnwrapTu : public RecursiveASTVisitor<ResultUnwrapTu> {
 public:
  explicit ResultUnwrapTu(TuContext& tu) : tu_(tu) {}

  void Run(ASTContext& ctx) {
    TraverseDecl(ctx.getTranslationUnitDecl());
    for (const FunctionDecl* fn : bodies_) Analyze(fn);
  }

  bool VisitFunctionDecl(FunctionDecl* fn) {
    if (fn->doesThisDeclarationHaveABody() && fn->getBody() != nullptr &&
        tu_.InScope(fn->getBeginLoc())) {
      bodies_.push_back(fn);
    }
    return true;
  }

 private:
  // Index of `vd` among fn's Result parameters, or -1.
  static int ResultParamIndex(const FunctionDecl* fn, const Subject& s) {
    if (!s.valid() || !s.path.empty()) return -1;
    const auto* p = dyn_cast<ParmVarDecl>(s.base);
    if (p == nullptr || p->getDeclContext() != fn) return -1;
    if (!IsResultType(p->getType())) return -1;
    return static_cast<int>(p->getFunctionScopeIndex());
  }

  void Analyze(const FunctionDecl* fn) {
    BodyScan scan;
    scan.TraverseStmt(fn->getBody());
    if (scan.unwraps.empty() && scan.args.empty()) return;
    GuardFacts facts(fn, tu_.ast());
    const bool annotated = HasAnnotation(fn, "rdftx::unwraps_result_args");

    for (const BodyScan::Unwrap& u : scan.unwraps) {
      if (!tu_.InScope(u.site->getExprLoc())) continue;
      const Expr* recv = u.receiver;
      if (recv == nullptr) continue;
      Subject s = SubjectOf(recv);
      if (s.valid()) {
        if (facts.KnownOk(u.site, s)) continue;
        const int pi = ResultParamIndex(fn, s);
        if (pi >= 0) {
          // The caller's problem: record the contract, don't diagnose.
          if (!annotated) {
            if (FunctionSummary* sum = tu_.SummaryFor(fn)) {
              sum->unwraps_params.insert(pi);
            }
          }
          continue;
        }
        if (s.path.empty() && IsResultType(s.base->getType())) {
          tu_.Emit(u.site->getExprLoc(), "result-unwrap",
                   "Result '" + s.base->getNameAsString() +
                       "' unwrapped without a dominating ok() check; test "
                       "ok() (or use status()) before accessing the value");
        }
        // Member/deref chains: precision limit, stay silent.
        continue;
      }
      const Expr* stripped = recv->IgnoreParenImpCasts();
      if (isa<MaterializeTemporaryExpr>(stripped) || stripped->isPRValue()) {
        tu_.Emit(u.site->getExprLoc(), "result-unwrap",
                 "Result returned by a call is unwrapped immediately; bind "
                 "it to a variable and test ok() before accessing the value");
      }
    }

    for (const BodyScan::ArgUse& a : scan.args) {
      if (!tu_.InScope(a.call->getExprLoc())) continue;
      const std::string usr = UsrOf(a.callee);
      if (usr.empty()) continue;
      // A body-less callee never reaches the pre-pass; materialize its
      // summary here so an UNWRAPS_RESULT_ARGS declaration still
      // reaches the global closure.
      if (HasAnnotation(a.callee, "rdftx::unwraps_result_args")) {
        tu_.SummaryFor(a.callee);
      }
      Subject s = SubjectOf(StripValuePass(a.arg));
      if (s.valid() && facts.KnownOk(a.call, s)) continue;
      const int pi = s.valid() ? ResultParamIndex(fn, s) : -1;
      if (pi >= 0) {
        // Unchecked forward: closes transitively in the global phase.
        if (FunctionSummary* sum = tu_.SummaryFor(fn)) {
          sum->forwards_result.push_back(
              {pi, {usr, static_cast<int>(a.index)}});
        }
        continue;
      }
      std::string what = "a Result";
      if (s.valid() && s.path.empty()) {
        what = "Result '" + s.base->getNameAsString() + "'";
      }
      Obligation ob;
      ob.check = "result-unwrap";
      ob.kind = "unchecked-arg";
      ob.callee_usr = usr;
      ob.param = static_cast<int>(a.index);
      ob.detail = what;
      ob.detail2 = QualifiedName(a.callee);
      if (tu_.Describe(a.call->getExprLoc(), "result-unwrap", &ob.file,
                       &ob.line, &ob.col, &ob.suppressed)) {
        tu_.record().obligations.push_back(std::move(ob));
      }
    }
  }

  TuContext& tu_;
  std::vector<const FunctionDecl*> bodies_;
};

class ResultUnwrapCheck : public Check {
 public:
  llvm::StringRef name() const override { return "result-unwrap"; }

  void RunOnTu(TuContext& tu) override { ResultUnwrapTu(tu).Run(tu.ast()); }

  void RunGlobal(GlobalContext& g) override {
    for (const Obligation& ob : g.Obligations()) {
      if (ob.check != "result-unwrap" || ob.kind != "unchecked-arg" ||
          ob.suppressed) {
        continue;
      }
      if (!g.UnwrapsParam(ob.callee_usr, ob.param)) continue;
      g.EmitGlobal(Finding{
          ob.file, ob.line, ob.col, "result-unwrap",
          ob.detail + " is passed to '" + ob.detail2 +
              "' which unwraps it without re-checking ok(); prove ok() "
              "before the call"});
    }
  }
};

}  // namespace

std::unique_ptr<Check> MakeResultUnwrapCheck() {
  return std::make_unique<ResultUnwrapCheck>();
}

}  // namespace rdftx_analyzer
