// epoch-lifetime: no raw Epoch/DeltaChunk pointer stored in a field
// outside src/rdf/; no pointer/reference derived from a function-local
// Epoch/DeltaChunk/TemporalGraph returned; no lambda handed to
// Submit/std::thread capturing epoch state by reference or raw
// pointer. Interprocedurally, a helper that returns a pointer derived
// from its epoch-class parameter (summary: returns_param_derived)
// turns `return Helper(local_epoch)` in a caller into the same escape.

#include <memory>
#include <string>
#include <vector>

#include "clang/AST/RecursiveASTVisitor.h"
#include "tools/analyzer/analyzer.h"
#include "tools/analyzer/callgraph.h"
#include "tools/analyzer/summaries.h"

namespace rdftx_analyzer {
namespace {

using namespace clang;

class EpochTu : public RecursiveASTVisitor<EpochTu> {
 public:
  explicit EpochTu(TuContext& tu) : tu_(tu) {}

  void Run(ASTContext& ctx) {
    TraverseDecl(ctx.getTranslationUnitDecl());
    for (const FunctionDecl* fn : bodies_) CheckEpochReturns(fn);
  }

  bool VisitFieldDecl(FieldDecl* fd) {
    HandleEpochField(fd);
    return true;
  }

  bool VisitFunctionDecl(FunctionDecl* fn) {
    if (fn->doesThisDeclarationHaveABody() && fn->getBody() != nullptr &&
        tu_.InScope(fn->getBeginLoc())) {
      bodies_.push_back(fn);
    }
    return true;
  }

  bool VisitCallExpr(CallExpr* call) {
    const FunctionDecl* callee = call->getDirectCallee();
    if (callee == nullptr || !callee->getDeclName().isIdentifier()) {
      return true;
    }
    llvm::StringRef name = callee->getName();
    if (name != "Submit" && name != "Enqueue" && name != "Schedule") {
      return true;
    }
    for (const Expr* arg : call->arguments()) {
      CheckLambdaArg(arg, name.str(), call->getExprLoc());
    }
    return true;
  }

  bool VisitCXXConstructExpr(CXXConstructExpr* ce) {
    // std::thread(lambda): same escape rule as pool Submit().
    const CXXConstructorDecl* ctor = ce->getConstructor();
    if (ctor == nullptr) return true;
    const CXXRecordDecl* rec = ctor->getParent();
    if (rec == nullptr || rec->getName() != "thread") return true;
    for (const Expr* arg : ce->arguments()) {
      CheckLambdaArg(arg, "std::thread", ce->getBeginLoc());
    }
    return true;
  }

 private:
  void HandleEpochField(FieldDecl* fd) {
    if (!tu_.InScope(fd->getLocation())) return;
    QualType t = fd->getType();
    const CXXRecordDecl* pointee = nullptr;
    if (t->isPointerType()) {
      pointee = RecordOf(t->getPointeeType());
    } else if (t->isReferenceType()) {
      pointee = RecordOf(t.getNonReferenceType());
    }
    if (!IsEpochClass(pointee, /*fieldRule=*/true)) return;
    std::string file;
    unsigned line, col;
    if (tu_.Locate(fd->getLocation(), &file, &line, &col) &&
        file.find("/rdf/") != std::string::npos) {
      return;  // the epoch machinery itself owns its chunk chains
    }
    tu_.Emit(fd->getLocation(), "epoch-lifetime",
             "raw " + pointee->getNameAsString() +
                 " pointer stored in field '" + fd->getNameAsString() +
                 "' may outlive its epoch; hold ownership or re-derive it "
                 "per operation");
  }

  void CheckEpochReturns(const FunctionDecl* fn) {
    QualType ret = fn->getReturnType();
    if (!ret->isPointerType() && !ret->isReferenceType()) return;
    std::vector<const ReturnStmt*> returns;
    CollectReturns(fn->getBody(), &returns);
    for (const ReturnStmt* rs : returns) {
      const Expr* rv = rs->getRetValue();
      if (rv == nullptr) continue;
      // `return Helper(&local)`: dangling iff Helper's summary says the
      // return derives from that parameter, so record an obligation
      // instead of assuming the worst (Helper may copy). Member calls
      // stay on the local rule below — `e.chunk()` on a local epoch is
      // a direct derivation, not a hand-off.
      const Expr* inner = rv->IgnoreParenImpCasts();
      const auto* call = dyn_cast<CallExpr>(inner);
      if (call != nullptr && !isa<CXXMemberCallExpr>(call) &&
          !isa<CXXOperatorCallExpr>(call) &&
          call->getDirectCallee() != nullptr) {
        const FunctionDecl* callee = call->getDirectCallee();
        const std::string usr = UsrOf(callee);
        if (usr.empty()) continue;
        for (unsigned i = 0; i < call->getNumArgs(); ++i) {
          const VarDecl* src = FindLocalEpochSource(call->getArg(i));
          if (src == nullptr) continue;
          Obligation ob;
          ob.check = "epoch-lifetime";
          ob.kind = "ret-through-call";
          ob.callee_usr = usr;
          ob.param = static_cast<int>(i);
          ob.detail = src->getNameAsString();
          ob.detail2 = QualifiedName(callee);
          if (tu_.Describe(rs->getBeginLoc(), "epoch-lifetime", &ob.file,
                           &ob.line, &ob.col, &ob.suppressed)) {
            tu_.record().obligations.push_back(std::move(ob));
          }
        }
        continue;
      }
      const VarDecl* local = FindLocalEpochSource(rv);
      if (local != nullptr) {
        tu_.Emit(rs->getBeginLoc(), "epoch-lifetime",
                 "returns a pointer/reference derived from local '" +
                     local->getNameAsString() + "' (" +
                     RecordOf(local->getType())->getNameAsString() +
                     "), which is destroyed when this scope ends");
        continue;
      }
      // Summary: the return derives from an epoch-class parameter.
      if (const ParmVarDecl* p = FindParamEpochSource(fn, rv)) {
        if (FunctionSummary* s = tu_.SummaryFor(fn)) {
          s->returns_param_derived.insert(
              static_cast<int>(p->getFunctionScopeIndex()));
        }
      }
    }
  }

  static void CollectReturns(const Stmt* s,
                             std::vector<const ReturnStmt*>* out) {
    if (s == nullptr) return;
    if (isa<LambdaExpr>(s)) return;  // separate function body
    if (const auto* rs = dyn_cast<ReturnStmt>(s)) out->push_back(rs);
    for (const Stmt* c : s->children()) CollectReturns(c, out);
  }

  // A DeclRefExpr inside `e` naming a function-local, by-value
  // Epoch/DeltaChunk/TemporalGraph variable (parameters are the
  // caller's responsibility and stay exempt — the summary +
  // obligation pair covers them instead).
  const VarDecl* FindLocalEpochSource(const Expr* e) {
    if (e == nullptr) return nullptr;
    if (const auto* dre = dyn_cast<DeclRefExpr>(e->IgnoreParenImpCasts())) {
      const auto* vd = dyn_cast<VarDecl>(dre->getDecl());
      if (vd != nullptr && vd->hasLocalStorage() && !isa<ParmVarDecl>(vd) &&
          !vd->getType()->isReferenceType() &&
          !vd->getType()->isPointerType() &&
          IsEpochClass(RecordOf(vd->getType()), /*fieldRule=*/false)) {
        return vd;
      }
    }
    for (const Stmt* c : e->children()) {
      if (const auto* sub = dyn_cast_or_null<Expr>(c)) {
        if (const VarDecl* hit = FindLocalEpochSource(sub)) return hit;
      }
    }
    return nullptr;
  }

  // A DeclRefExpr inside `e` naming one of `fn`'s parameters whose
  // (pointee) type is an epoch class.
  const ParmVarDecl* FindParamEpochSource(const FunctionDecl* fn,
                                          const Expr* e) {
    if (e == nullptr) return nullptr;
    if (const auto* dre = dyn_cast<DeclRefExpr>(e->IgnoreParenImpCasts())) {
      if (const auto* p = dyn_cast<ParmVarDecl>(dre->getDecl())) {
        QualType t = p->getType();
        const CXXRecordDecl* rec = nullptr;
        if (t->isPointerType()) {
          rec = RecordOf(t->getPointeeType());
        } else {
          rec = RecordOf(t.getNonReferenceType());
        }
        if (IsEpochClass(rec, /*fieldRule=*/false) &&
            p->getDeclContext() == fn) {
          return p;
        }
      }
    }
    for (const Stmt* c : e->children()) {
      if (const auto* sub = dyn_cast_or_null<Expr>(c)) {
        if (const ParmVarDecl* hit = FindParamEpochSource(fn, sub)) {
          return hit;
        }
      }
    }
    return nullptr;
  }

  void CheckLambdaArg(const Expr* arg, const std::string& sink,
                      SourceLocation loc) {
    if (arg == nullptr || !tu_.InScope(loc)) return;
    const Expr* e = arg->IgnoreParenImpCasts();
    if (const auto* mte = dyn_cast<MaterializeTemporaryExpr>(e)) {
      e = mte->getSubExpr()->IgnoreParenImpCasts();
    }
    if (const auto* bte = dyn_cast<CXXBindTemporaryExpr>(e)) {
      e = bte->getSubExpr()->IgnoreParenImpCasts();
    }
    const auto* lam = dyn_cast<LambdaExpr>(e);
    if (lam == nullptr) return;
    for (const LambdaCapture& cap : lam->captures()) {
      if (!cap.capturesVariable()) continue;
      const VarDecl* vd = cap.getCapturedVar();
      if (vd == nullptr) continue;
      QualType t = vd->getType();
      bool bad = false;
      if (cap.getCaptureKind() == LCK_ByRef &&
          IsEpochClass(RecordOf(t), /*fieldRule=*/true)) {
        bad = true;  // by-ref capture of an Epoch/DeltaChunk value
      }
      if (t->isPointerType() &&
          IsEpochClass(RecordOf(t->getPointeeType()), /*fieldRule=*/true)) {
        bad = true;  // raw pointer smuggled in by copy or reference
      }
      if (bad) {
        tu_.Emit(loc, "epoch-lifetime",
                 "lambda handed to '" + sink + "' captures '" +
                     vd->getNameAsString() +
                     "' whose epoch may end before the task runs; copy the "
                     "data it needs instead");
      }
    }
  }

  TuContext& tu_;
  std::vector<const FunctionDecl*> bodies_;
};

class EpochLifetimeCheck : public Check {
 public:
  llvm::StringRef name() const override { return "epoch-lifetime"; }

  void RunOnTu(TuContext& tu) override { EpochTu(tu).Run(tu.ast()); }

  void RunGlobal(GlobalContext& g) override {
    for (const Obligation& ob : g.Obligations()) {
      if (ob.check != "epoch-lifetime" || ob.kind != "ret-through-call" ||
          ob.suppressed) {
        continue;
      }
      const FunctionSummary* s = g.SummaryOf(ob.callee_usr);
      if (s == nullptr || s->returns_param_derived.count(ob.param) == 0) {
        continue;
      }
      g.EmitGlobal(Finding{
          ob.file, ob.line, ob.col, "epoch-lifetime",
          "returns a pointer/reference derived from local '" + ob.detail +
              "' through '" + ob.detail2 +
              "', which is destroyed when this scope ends"});
    }
  }
};

}  // namespace

std::unique_ptr<Check> MakeEpochLifetimeCheck() {
  return std::make_unique<EpochLifetimeCheck>();
}

}  // namespace rdftx_analyzer
