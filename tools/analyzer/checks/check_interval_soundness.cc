// interval-soundness: every rdftx::Interval(start, end) construction
// must carry a proof that start <= end — the half-open [start, end)
// algebra (Overlaps, Intersect, TemporalSet normalization) silently
// misbehaves on inverted intervals. Accepted proofs, in order:
//
//   1. both bounds constant and ordered
//   2. start == 0 (Chronon is unsigned; 0 is the minimum)
//   3. end == kChrononNow (0xFFFFFFFF, the maximum)
//   4. structural: end is `start` itself or `start + k` with k a
//      non-negative constant (subject paths compare member chains,
//      so `Interval(gp.t.date, gp.t.date + 1)` proves)
//   5. a dominating guard: GuardFacts must-dataflow proves
//      start <= end at the construction
//   6. both bounds are Chronon parameters of the enclosing function —
//      recorded in the summary (interval_param_pairs); the proof
//      obligation moves to every caller, resolved in the global phase
//
// Anything else is a finding; a reviewed construction takes
// `// rdftx-analyzer: allow(interval-soundness)` with a justification.

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "clang/AST/RecursiveASTVisitor.h"
#include "tools/analyzer/analyzer.h"
#include "tools/analyzer/callgraph.h"
#include "tools/analyzer/dataflow.h"
#include "tools/analyzer/summaries.h"

namespace rdftx_analyzer {
namespace {

using namespace clang;

constexpr int64_t kChrononNowValue = 0xFFFFFFFFll;

bool IsIntervalRecord(const CXXRecordDecl* rec) {
  return rec != nullptr && rec->getName() == "Interval" &&
         InNamespace(rec, "rdftx");
}

bool IsChrononParam(const ParmVarDecl* p) {
  return p->getType().getAsString().find("Chronon") != std::string::npos;
}

class BodyScan : public RecursiveASTVisitor<BodyScan> {
 public:
  bool TraverseLambdaExpr(LambdaExpr*) { return true; }

  bool VisitCXXConstructExpr(CXXConstructExpr* ce) {
    const CXXConstructorDecl* ctor = ce->getConstructor();
    if (ctor == nullptr || !IsIntervalRecord(ctor->getParent())) return true;
    if (ce->getNumArgs() < 2) return true;  // copy/move/default
    constructs.push_back(ce);
    return true;
  }

  bool VisitCallExpr(CallExpr* call) {
    if (isa<CXXOperatorCallExpr>(call)) return true;
    if (call->getDirectCallee() != nullptr) calls.push_back(call);
    return true;
  }

  std::vector<const CXXConstructExpr*> constructs;
  std::vector<const CallExpr*> calls;
};

class IntervalTu : public RecursiveASTVisitor<IntervalTu> {
 public:
  explicit IntervalTu(TuContext& tu) : tu_(tu) {}

  void Run(ASTContext& ctx) {
    TraverseDecl(ctx.getTranslationUnitDecl());
    for (const FunctionDecl* fn : bodies_) Analyze(fn);
  }

  bool VisitFunctionDecl(FunctionDecl* fn) {
    if (fn->doesThisDeclarationHaveABody() && fn->getBody() != nullptr &&
        tu_.InScope(fn->getBeginLoc())) {
      bodies_.push_back(fn);
    }
    return true;
  }

 private:
  // Rules 1-5. `at` is the statement whose program point anchors the
  // guard facts (the construction or the call).
  bool ProvesOrdered(GuardFacts& facts, const Stmt* at, const Expr* s_expr,
                     const Expr* e_expr) {
    ASTContext& ctx = tu_.ast();
    int64_t sc = 0, ec = 0;
    const bool s_const = ConstValueOf(s_expr, ctx, &sc);
    const bool e_const = ConstValueOf(e_expr, ctx, &ec);
    if (s_const && e_const) return sc <= ec;          // rule 1
    if (s_const && sc == 0) return true;              // rule 2
    if (e_const && ec == kChrononNowValue) return true;  // rule 3
    const Subject ss = SubjectOf(s_expr);
    if (ss.valid()) {                                 // rule 4
      if (SubjectOf(e_expr) == ss) return true;
      const Expr* e = e_expr->IgnoreParenImpCasts();
      if (const auto* bo = dyn_cast<BinaryOperator>(e)) {
        if (bo->getOpcode() == BO_Add) {
          int64_t k = 0;
          if (SubjectOf(bo->getLHS()) == ss &&
              ConstValueOf(bo->getRHS(), ctx, &k) && k >= 0) {
            return true;
          }
          if (SubjectOf(bo->getRHS()) == ss &&
              ConstValueOf(bo->getLHS(), ctx, &k) && k >= 0) {
            return true;
          }
        }
      }
    }
    if (facts.Usable()) {                             // rule 5
      if (facts.ProvesLe(at, s_expr, e_expr)) return true;
      // AllAlwaysAdd usually places the construction itself in the
      // CFG; if not, the argument expressions share its program point.
      if (facts.ProvesLe(e_expr, s_expr, e_expr)) return true;
      if (facts.ProvesLe(s_expr, s_expr, e_expr)) return true;
    }
    return false;
  }

  void Analyze(const FunctionDecl* fn) {
    BodyScan scan;
    scan.TraverseStmt(fn->getBody());
    if (scan.constructs.empty() && scan.calls.empty()) return;
    GuardFacts facts(fn, tu_.ast());

    for (const CXXConstructExpr* ce : scan.constructs) {
      if (!tu_.InScope(ce->getBeginLoc())) continue;
      const Expr* s_expr = ce->getArg(0);
      const Expr* e_expr = ce->getArg(1);
      if (ProvesOrdered(facts, ce, s_expr, e_expr)) continue;
      // Rule 6: both bounds are Chronon parameters — the obligation
      // moves to the callers.
      const Subject ss = SubjectOf(s_expr);
      const Subject es = SubjectOf(e_expr);
      const auto* sp = ss.valid() && ss.path.empty()
                           ? dyn_cast<ParmVarDecl>(ss.base)
                           : nullptr;
      const auto* ep = es.valid() && es.path.empty()
                           ? dyn_cast<ParmVarDecl>(es.base)
                           : nullptr;
      if (sp != nullptr && ep != nullptr && sp->getDeclContext() == fn &&
          ep->getDeclContext() == fn && IsChrononParam(sp) &&
          IsChrononParam(ep)) {
        if (FunctionSummary* sum = tu_.SummaryFor(fn)) {
          sum->interval_param_pairs.push_back(
              {static_cast<int>(sp->getFunctionScopeIndex()),
               static_cast<int>(ep->getFunctionScopeIndex())});
        }
        continue;
      }
      tu_.Emit(ce->getBeginLoc(), "interval-soundness",
               "cannot prove start <= end for this Interval construction; "
               "guard it, order the bounds, or annotate a justified "
               "allow(interval-soundness)");
    }

    // Call-site obligations: adjacent Chronon parameter pairs whose
    // ordering the caller cannot prove. Resolved against the callee's
    // interval_param_pairs in the global phase.
    for (const CallExpr* call : scan.calls) {
      if (!tu_.InScope(call->getExprLoc())) continue;
      const FunctionDecl* callee = call->getDirectCallee();
      const std::string usr = UsrOf(callee);
      if (usr.empty()) continue;
      const unsigned n = std::min(call->getNumArgs(), callee->getNumParams());
      for (unsigned i = 0; i + 1 < n; ++i) {
        if (!IsChrononParam(callee->getParamDecl(i)) ||
            !IsChrononParam(callee->getParamDecl(i + 1))) {
          continue;
        }
        if (ProvesOrdered(facts, call, call->getArg(i), call->getArg(i + 1))) {
          continue;
        }
        Obligation ob;
        ob.check = "interval-soundness";
        ob.kind = "arg-pair";
        ob.callee_usr = usr;
        ob.param = static_cast<int>(i);
        ob.detail = std::to_string(i + 1);
        ob.detail2 = QualifiedName(callee);
        if (tu_.Describe(call->getExprLoc(), "interval-soundness", &ob.file,
                         &ob.line, &ob.col, &ob.suppressed)) {
          tu_.record().obligations.push_back(std::move(ob));
        }
      }
    }
  }

  TuContext& tu_;
  std::vector<const FunctionDecl*> bodies_;
};

class IntervalSoundnessCheck : public Check {
 public:
  llvm::StringRef name() const override { return "interval-soundness"; }

  void RunOnTu(TuContext& tu) override { IntervalTu(tu).Run(tu.ast()); }

  void RunGlobal(GlobalContext& g) override {
    for (const Obligation& ob : g.Obligations()) {
      if (ob.check != "interval-soundness" || ob.kind != "arg-pair" ||
          ob.suppressed) {
        continue;
      }
      const FunctionSummary* s = g.SummaryOf(ob.callee_usr);
      if (s == nullptr) continue;
      const int j = std::stoi(ob.detail);
      bool hit = false;
      for (const auto& [a, b] : s->interval_param_pairs) {
        if (a == ob.param && b == j) {
          hit = true;
          break;
        }
      }
      if (!hit) continue;
      g.EmitGlobal(Finding{
          ob.file, ob.line, ob.col, "interval-soundness",
          "arguments " + std::to_string(ob.param) + " and " + ob.detail +
              " flow into Interval(start, end) inside '" + ob.detail2 +
              "' without a provable start <= end; validate them before "
              "the call"});
    }
  }
};

}  // namespace

std::unique_ptr<Check> MakeIntervalSoundnessCheck() {
  return std::make_unique<IntervalSoundnessCheck>();
}

}  // namespace rdftx_analyzer
