// decode-overflow: in src/mvbt/, src/util/ and src/storage/, a value
// produced by the varint/zigzag/fixed-width decoders is attacker- (or
// corruption-) controlled until it passes a bounds check. Unguarded
// +, -, *, << on such a value can wrap *before* the check that was
// supposed to reject it, turning "corrupt stream → Corruption status"
// into "corrupt stream → wrong interval accepted".
//
// Taint seeds: variables initialized or assigned from a call whose
// name contains varint / zigzag / getfixed / decodefixed (including
// calls through a lambda variable, e.g. `get_varint(&ds)`), and
// variables passed by address to such a call. Taint propagates
// through initializers and assignments that mention a tainted
// variable (`const uint64_t start = base + ds` taints `start`).
//
// A tainted operand is exempt when the GuardFacts must-dataflow
// carries a constant upper bound for it at the arithmetic site — the
// decoder idiom `if (ds > kChrononMax) return Corruption;` proves the
// later `prev.start + ds` cannot wrap. Operands reached through an
// explicit cast are deliberately out of scope: masked shifts
// (`(b & 0x7F) << shift`), widening (`static_cast<uint64_t>(p[i])`)
// and modular zigzag reconstruction (`prev + static_cast<uint64_t>(
// ZigZagDecode(z))`) wrap by design.
//
// Interprocedurally, a function whose uint64_t parameter feeds
// unguarded flagged arithmetic records it in the summary
// (decode_arith_params); passing a tainted, unbounded variable into
// such a parameter is reported at the call site. TRUSTED_DECODE on
// the enclosing function (or the callee) waives the check — the
// annotation carries the justification.

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "clang/AST/RecursiveASTVisitor.h"
#include "tools/analyzer/analyzer.h"
#include "tools/analyzer/callgraph.h"
#include "tools/analyzer/dataflow.h"
#include "tools/analyzer/summaries.h"

namespace rdftx_analyzer {
namespace {

using namespace clang;

const std::vector<std::string> kDecodeDirs = {"/src/mvbt/", "/src/util/",
                                              "/src/storage/"};

bool IsDecodeName(llvm::StringRef name) {
  const std::string n = Lower(name.str());
  return n.find("varint") != std::string::npos ||
         n.find("zigzag") != std::string::npos ||
         n.find("getfixed") != std::string::npos ||
         n.find("decodefixed") != std::string::npos;
}

// Name of the decode routine `call` invokes, or "" if it is not one.
// A call through a lambda variable (`get_varint(&ds)`) is a
// CXXOperatorCallExpr whose first argument names the variable.
std::string DecodeCalleeName(const CallExpr* call) {
  if (const auto* oc = dyn_cast<CXXOperatorCallExpr>(call)) {
    if (oc->getOperator() == OO_Call && oc->getNumArgs() >= 1) {
      const Expr* fn = oc->getArg(0)->IgnoreParenImpCasts();
      if (const auto* dre = dyn_cast<DeclRefExpr>(fn)) {
        if (IsDecodeName(dre->getDecl()->getName())) {
          return dre->getDecl()->getNameAsString();
        }
      }
    }
    return "";
  }
  const FunctionDecl* callee = call->getDirectCallee();
  if (callee == nullptr || !callee->getDeclName().isIdentifier()) return "";
  if (IsDecodeName(callee->getName())) return callee->getNameAsString();
  return "";
}

bool ContainsDecodeCall(const Stmt* s) {
  if (s == nullptr || isa<LambdaExpr>(s)) return false;
  if (const auto* call = dyn_cast<CallExpr>(s)) {
    if (!DecodeCalleeName(call).empty()) return true;
  }
  for (const Stmt* c : s->children()) {
    if (ContainsDecodeCall(c)) return true;
  }
  return false;
}

bool ContainsTaintedRef(const Stmt* s, const std::set<const VarDecl*>& taint) {
  if (s == nullptr || isa<LambdaExpr>(s)) return false;
  if (const auto* dre = dyn_cast<DeclRefExpr>(s)) {
    if (const auto* vd = dyn_cast<VarDecl>(dre->getDecl())) {
      if (taint.count(vd) != 0) return true;
    }
  }
  for (const Stmt* c : s->children()) {
    if (ContainsTaintedRef(c, taint)) return true;
  }
  return false;
}

// The variable a flagged-arithmetic operand names directly, or null.
// IgnoreParenImpCasts keeps explicit casts in place on purpose: a
// static_cast operand is a declared widening / modular intent.
const VarDecl* DirectVarOperand(const Expr* e) {
  const auto* dre = dyn_cast<DeclRefExpr>(e->IgnoreParenImpCasts());
  if (dre == nullptr) return nullptr;
  return dyn_cast<VarDecl>(dre->getDecl());
}

bool IsFlaggedOp(BinaryOperatorKind op) {
  switch (op) {
    case BO_Add:
    case BO_Sub:
    case BO_Mul:
    case BO_Shl:
    case BO_AddAssign:
    case BO_SubAssign:
    case BO_MulAssign:
    case BO_ShlAssign:
      return true;
    default:
      return false;
  }
}

bool IsUint64Param(const ParmVarDecl* p) {
  return p->getType().getAsString().find("uint64_t") != std::string::npos;
}

// Everything one function body contributes, lambdas excluded (a
// lambda body has its own CFG; its internals are out of scope here —
// the decoder lambdas are pure masked-shift loops).
class BodyScan : public RecursiveASTVisitor<BodyScan> {
 public:
  bool TraverseLambdaExpr(LambdaExpr*) { return true; }

  bool VisitVarDecl(VarDecl* vd) {
    if (vd->hasInit()) decls.push_back(vd);
    return true;
  }

  bool VisitBinaryOperator(BinaryOperator* bo) {
    if (bo->isAssignmentOp()) assigns.push_back(bo);
    if (IsFlaggedOp(bo->getOpcode())) flagged.push_back(bo);
    return true;
  }

  bool VisitCallExpr(CallExpr* call) {
    calls.push_back(call);
    return true;
  }

  std::vector<const VarDecl*> decls;
  std::vector<const BinaryOperator*> assigns;
  std::vector<const CallExpr*> calls;
  std::vector<const BinaryOperator*> flagged;
};

class DecodeOverflowTu : public RecursiveASTVisitor<DecodeOverflowTu> {
 public:
  explicit DecodeOverflowTu(TuContext& tu) : tu_(tu) {}

  void Run(ASTContext& ctx) {
    TraverseDecl(ctx.getTranslationUnitDecl());
    for (const FunctionDecl* fn : bodies_) Analyze(fn);
  }

  bool VisitFunctionDecl(FunctionDecl* fn) {
    if (fn->doesThisDeclarationHaveABody() && fn->getBody() != nullptr &&
        tu_.InDirScope(fn->getBeginLoc(), kDecodeDirs)) {
      bodies_.push_back(fn);
    }
    return true;
  }

 private:
  static std::set<const VarDecl*> ComputeTaint(const BodyScan& scan) {
    std::set<const VarDecl*> taint;
    // Seeds: out-parameters of decode calls (`get_varint(&ds)`).
    for (const CallExpr* call : scan.calls) {
      if (DecodeCalleeName(call).empty()) continue;
      for (const Expr* arg : call->arguments()) {
        const auto* uo = dyn_cast<UnaryOperator>(arg->IgnoreParenImpCasts());
        if (uo == nullptr || uo->getOpcode() != UO_AddrOf) continue;
        if (const auto* dre =
                dyn_cast<DeclRefExpr>(uo->getSubExpr()->IgnoreParenImpCasts())) {
          if (const auto* vd = dyn_cast<VarDecl>(dre->getDecl())) {
            taint.insert(vd);
          }
        }
      }
    }
    // Seeds + propagation through initializers and assignments, to a
    // fixpoint: `const uint64_t start = base + ds;` taints `start`.
    for (int round = 0; round < 8; ++round) {
      bool changed = false;
      for (const VarDecl* vd : scan.decls) {
        if (taint.count(vd) != 0) continue;
        const Expr* init = vd->getInit();
        if (ContainsDecodeCall(init) || ContainsTaintedRef(init, taint)) {
          taint.insert(vd);
          changed = true;
        }
      }
      for (const BinaryOperator* bo : scan.assigns) {
        const VarDecl* lhs = DirectVarOperand(bo->getLHS());
        if (lhs == nullptr || taint.count(lhs) != 0) continue;
        if (ContainsDecodeCall(bo->getRHS()) ||
            ContainsTaintedRef(bo->getRHS(), taint)) {
          taint.insert(lhs);
          changed = true;
        }
      }
      if (!changed) break;
    }
    return taint;
  }

  // A constant upper bound proven at `bo` (or, if the compound
  // statement itself is not a CFG element, at the operand's own
  // program point — under AllAlwaysAdd the DeclRef always is one).
  static bool Bounded(GuardFacts& facts, const BinaryOperator* bo,
                      const Expr* operand, const VarDecl* vd) {
    if (!facts.Usable()) return false;
    const Subject s{vd, ""};
    return facts.HasConstUpperBound(bo, s, nullptr) ||
           facts.HasConstUpperBound(operand->IgnoreParenImpCasts(), s, nullptr);
  }

  void Analyze(const FunctionDecl* fn) {
    if (HasAnnotation(fn, "rdftx::trusted_decode")) return;
    BodyScan scan;
    scan.TraverseStmt(fn->getBody());
    if (scan.flagged.empty() && scan.calls.empty()) return;
    const std::set<const VarDecl*> taint = ComputeTaint(scan);
    GuardFacts facts(fn, tu_.ast());

    for (const BinaryOperator* bo : scan.flagged) {
      if (!tu_.InScope(bo->getExprLoc())) continue;
      for (const Expr* side : {bo->getLHS(), bo->getRHS()}) {
        const VarDecl* vd = DirectVarOperand(side);
        if (vd == nullptr) continue;
        if (taint.count(vd) != 0) {
          if (Bounded(facts, bo, side, vd)) continue;
          tu_.Emit(bo->getExprLoc(), "decode-overflow",
                   "unguarded arithmetic on decoded value '" +
                       vd->getNameAsString() +
                       "' can wrap before its bounds check; validate the "
                       "decoded range first (or mark the function "
                       "TRUSTED_DECODE)");
          break;  // one finding per operation
        }
        // Parameters are not tainted locally; unguarded arithmetic on
        // a uint64_t parameter becomes the caller's obligation.
        if (const auto* p = dyn_cast<ParmVarDecl>(vd)) {
          if (p->getDeclContext() == fn && IsUint64Param(p) &&
              !Bounded(facts, bo, side, vd)) {
            if (FunctionSummary* sum = tu_.SummaryFor(fn)) {
              sum->decode_arith_params.insert(
                  static_cast<int>(p->getFunctionScopeIndex()));
            }
          }
        }
      }
    }

    // Call sites handing a tainted, unbounded variable to a callee:
    // resolved against the callee's decode_arith_params globally.
    if (taint.empty()) return;
    for (const CallExpr* call : scan.calls) {
      if (isa<CXXOperatorCallExpr>(call)) continue;
      if (!tu_.InScope(call->getExprLoc())) continue;
      const FunctionDecl* callee = call->getDirectCallee();
      if (callee == nullptr) continue;
      const std::string usr = UsrOf(callee);
      if (usr.empty()) continue;
      const unsigned n = std::min(call->getNumArgs(), callee->getNumParams());
      for (unsigned i = 0; i < n; ++i) {
        if (!IsUint64Param(callee->getParamDecl(i))) continue;
        const VarDecl* vd = DirectVarOperand(call->getArg(i));
        if (vd == nullptr || taint.count(vd) == 0) continue;
        if (facts.Usable() &&
            facts.HasConstUpperBound(call, Subject{vd, ""}, nullptr)) {
          continue;
        }
        Obligation ob;
        ob.check = "decode-overflow";
        ob.kind = "tainted-arg";
        ob.callee_usr = usr;
        ob.param = static_cast<int>(i);
        ob.detail = vd->getNameAsString();
        ob.detail2 = QualifiedName(callee);
        if (tu_.Describe(call->getExprLoc(), "decode-overflow", &ob.file,
                         &ob.line, &ob.col, &ob.suppressed)) {
          tu_.record().obligations.push_back(std::move(ob));
        }
      }
    }
  }

  TuContext& tu_;
  std::vector<const FunctionDecl*> bodies_;
};

class DecodeOverflowCheck : public Check {
 public:
  llvm::StringRef name() const override { return "decode-overflow"; }

  void RunOnTu(TuContext& tu) override { DecodeOverflowTu(tu).Run(tu.ast()); }

  void RunGlobal(GlobalContext& g) override {
    for (const Obligation& ob : g.Obligations()) {
      if (ob.check != "decode-overflow" || ob.kind != "tainted-arg" ||
          ob.suppressed) {
        continue;
      }
      const FunctionSummary* s = g.SummaryOf(ob.callee_usr);
      if (s == nullptr || s->trusted_decode ||
          s->decode_arith_params.count(ob.param) == 0) {
        continue;
      }
      g.EmitGlobal(Finding{
          ob.file, ob.line, ob.col, "decode-overflow",
          "decoded value '" + ob.detail + "' flows into '" + ob.detail2 +
              "' which performs unguarded arithmetic on that parameter; "
              "validate the decoded range before the call (or mark the "
              "callee TRUSTED_DECODE)"});
    }
  }
};

}  // namespace

std::unique_ptr<Check> MakeDecodeOverflowCheck() {
  return std::make_unique<DecodeOverflowCheck>();
}

}  // namespace rdftx_analyzer
