#include "tools/analyzer/analyzer.h"

#include <cctype>

#include "clang/AST/Attr.h"
#include "llvm/Support/Path.h"
#include "tools/analyzer/callgraph.h"
#include "tools/analyzer/summaries.h"

namespace rdftx_analyzer {

using namespace clang;

Options g_options;

bool CheckEnabled(llvm::StringRef name) {
  return g_options.checks.empty() ||
         g_options.checks.count(name.str()) != 0;
}

// ---------------------------------------------------------------------------
// TuContext
// ---------------------------------------------------------------------------

TuContext::TuContext(ASTContext& ast, TuRecord& record)
    : ast_(ast), sm_(ast.getSourceManager()), record_(record) {}

bool TuContext::Locate(SourceLocation loc, std::string* file, unsigned* line,
                       unsigned* col) {
  if (loc.isInvalid()) return false;
  SourceLocation exp = sm_.getExpansionLoc(loc);
  PresumedLoc p = sm_.getPresumedLoc(exp);
  if (p.isInvalid()) return false;
  *file = p.getFilename();
  *line = p.getLine();
  *col = p.getColumn();
  return true;
}

bool TuContext::InScope(SourceLocation loc) {
  if (loc.isInvalid()) return false;
  SourceLocation exp = sm_.getExpansionLoc(loc);
  if (g_options.testing) return sm_.isInMainFile(exp);
  if (g_options.src_root.empty()) return false;
  std::string file;
  unsigned line, col;
  if (!Locate(loc, &file, &line, &col)) return false;
  std::string prefix = g_options.src_root + "/src/";
  return file.compare(0, prefix.size(), prefix) == 0;
}

bool TuContext::InDirScope(SourceLocation loc,
                           const std::vector<std::string>& fragments) {
  if (!InScope(loc)) return false;
  if (g_options.testing) return true;
  std::string file;
  unsigned line, col;
  if (!Locate(loc, &file, &line, &col)) return false;
  for (const std::string& frag : fragments) {
    if (file.find(frag) != std::string::npos) return true;
  }
  return false;
}

const std::vector<std::string>& TuContext::FileLines(FileID fid,
                                                     const std::string& path) {
  auto it = file_lines_.find(path);
  if (it != file_lines_.end()) return it->second;
  std::vector<std::string> lines;
  llvm::StringRef buf = sm_.getBufferData(fid);
  while (!buf.empty()) {
    auto split = buf.split('\n');
    lines.push_back(split.first.str());
    buf = split.second;
  }
  return file_lines_.emplace(path, std::move(lines)).first->second;
}

static bool LineHas(const std::vector<std::string>& lines, unsigned line1,
                    const std::string& needle) {
  if (line1 == 0 || line1 > lines.size()) return false;
  return lines[line1 - 1].find(needle) != std::string::npos;
}

bool TuContext::Suppressed(SourceLocation loc, const std::string& check,
                           const std::string& file, unsigned line) {
  FileID fid = sm_.getFileID(sm_.getExpansionLoc(loc));
  const auto& lines = FileLines(fid, file);
  const std::string allow = "rdftx-analyzer: allow(" + check + ")";
  if (LineHas(lines, line, allow) || LineHas(lines, line - 1, allow)) {
    return true;
  }
  if (check == "status") {
    if (LineHas(lines, line, "status-ignored:") ||
        LineHas(lines, line - 1, "status-ignored:")) {
      return true;
    }
  }
  return false;
}

std::string TuContext::DisplayPath(const std::string& file) {
  if (g_options.testing) return llvm::sys::path::filename(file).str();
  const std::string& root = g_options.src_root;
  if (!root.empty() && file.compare(0, root.size() + 1, root + "/") == 0) {
    return file.substr(root.size() + 1);
  }
  return file;
}

void TuContext::Emit(SourceLocation loc, const std::string& check,
                     const std::string& msg) {
  std::string file;
  unsigned line, col;
  if (!Locate(loc, &file, &line, &col)) return;
  if (Suppressed(loc, check, file, line)) return;
  record_.local_findings.push_back(
      Finding{DisplayPath(file), line, col, check, msg});
}

bool TuContext::Describe(SourceLocation loc, const std::string& check,
                         std::string* display_file, unsigned* line,
                         unsigned* col, bool* suppressed) {
  std::string file;
  if (!Locate(loc, &file, line, col)) return false;
  *suppressed = Suppressed(loc, check, file, *line);
  *display_file = DisplayPath(file);
  return true;
}

FunctionSummary* TuContext::SummaryFor(const FunctionDecl* fn) {
  if (fn == nullptr) return nullptr;
  const std::string usr = UsrOf(fn);
  if (usr.empty()) return nullptr;
  auto it = summary_index_.find(usr);
  if (it != summary_index_.end()) return it->second;
  record_.summaries.emplace_back();
  FunctionSummary* s = &record_.summaries.back();
  s->usr = usr;
  s->name = QualifiedName(fn);
  std::string file;
  unsigned line = 0, col = 0;
  if (Locate(fn->getLocation(), &file, &line, &col)) {
    s->file = DisplayPath(file);
    s->line = line;
  }
  s->annotated_syncs = HasAnnotation(fn, "rdftx::syncs_on_all_paths");
  s->annotated_unwraps = HasAnnotation(fn, "rdftx::unwraps_result_args");
  s->trusted_decode = HasAnnotation(fn, "rdftx::trusted_decode");
  summary_index_.emplace(usr, s);
  return s;
}

// ---------------------------------------------------------------------------
// AST taxonomy helpers
// ---------------------------------------------------------------------------

std::string Lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(c));
  return s;
}

const CXXRecordDecl* RecordOf(QualType t) {
  return t.getNonReferenceType()
      .getCanonicalType()
      .getTypePtr()
      ->getAsCXXRecordDecl();
}

bool InNamespace(const Decl* d, llvm::StringRef ns) {
  for (const DeclContext* dc = d->getDeclContext(); dc != nullptr;
       dc = dc->getParent()) {
    if (const auto* n = dyn_cast<NamespaceDecl>(dc)) {
      if (n->getName() == ns) return true;
    }
  }
  return false;
}

bool IsUtilMutexRecord(const CXXRecordDecl* rec) {
  return rec != nullptr && rec->getName() == "Mutex" &&
         InNamespace(rec, "util");
}

bool IsUtilMutex(QualType t) { return IsUtilMutexRecord(RecordOf(t)); }

bool IsMutexGuard(QualType t) {
  const CXXRecordDecl* rec = RecordOf(t);
  return rec != nullptr && rec->getName() == "MutexLock" &&
         InNamespace(rec, "util");
}

bool IsEpochClass(const CXXRecordDecl* rec, bool fieldRule) {
  if (rec == nullptr) return false;
  llvm::StringRef n = rec->getName();
  if (n == "Epoch" || n == "DeltaChunk") return true;
  return !fieldRule && n == "TemporalGraph";
}

bool IsBlockHandleRecord(const CXXRecordDecl* rec) {
  return rec != nullptr && rec->getName() == "BlockHandle" &&
         InNamespace(rec, "engine");
}

bool IsBindingBlockRecord(const CXXRecordDecl* rec) {
  return rec != nullptr && rec->getName() == "BindingBlock" &&
         InNamespace(rec, "engine");
}

bool IsStatusOrResult(QualType t) {
  const CXXRecordDecl* rec = RecordOf(t);
  if (rec == nullptr) return false;
  llvm::StringRef n = rec->getName();
  if (n != "Status" && n != "Result") return false;
  return InNamespace(rec, "rdftx");
}

bool IsResultType(QualType t) {
  const CXXRecordDecl* rec = RecordOf(t);
  return rec != nullptr && rec->getName() == "Result" &&
         InNamespace(rec, "rdftx");
}

const ValueDecl* ResolveMutexRef(const Expr* e) {
  if (e == nullptr) return nullptr;
  e = e->IgnoreParenImpCasts();
  if (const auto* uo = dyn_cast<UnaryOperator>(e)) {
    if (uo->getOpcode() == UO_AddrOf) {
      e = uo->getSubExpr()->IgnoreParenImpCasts();
    }
  }
  if (const auto* me = dyn_cast<MemberExpr>(e)) return me->getMemberDecl();
  if (const auto* dre = dyn_cast<DeclRefExpr>(e)) return dre->getDecl();
  return nullptr;
}

const Expr* StripValuePass(const Expr* e) {
  e = e->IgnoreParenImpCasts();
  while (true) {
    if (const auto* mt = dyn_cast<MaterializeTemporaryExpr>(e)) {
      e = mt->getSubExpr()->IgnoreParenImpCasts();
      continue;
    }
    if (const auto* bt = dyn_cast<CXXBindTemporaryExpr>(e)) {
      e = bt->getSubExpr()->IgnoreParenImpCasts();
      continue;
    }
    if (const auto* ce = dyn_cast<CXXConstructExpr>(e)) {
      const CXXConstructorDecl* ctor = ce->getConstructor();
      if (ce->getNumArgs() >= 1 && ctor != nullptr &&
          (ctor->isCopyConstructor() || ctor->isMoveConstructor())) {
        e = ce->getArg(0)->IgnoreParenImpCasts();
        continue;
      }
    }
    return e;
  }
}

bool HasAnnotation(const Decl* d, llvm::StringRef tag) {
  if (d == nullptr) return false;
  for (const auto* attr : d->specific_attrs<AnnotateAttr>()) {
    if (attr->getAnnotation() == tag) return true;
  }
  return false;
}

std::string QualifiedName(const NamedDecl* d) {
  return d->getQualifiedNameAsString();
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

std::vector<std::unique_ptr<Check>> MakeAllChecks() {
  std::vector<std::unique_ptr<Check>> checks;
  checks.push_back(MakeLockOrderCheck());
  checks.push_back(MakeEpochLifetimeCheck());
  checks.push_back(MakeDurabilityCheck());
  checks.push_back(MakeStatusCheck());
  checks.push_back(MakeBlockHandleCheck());
  checks.push_back(MakeResultUnwrapCheck());
  checks.push_back(MakeIntervalSoundnessCheck());
  checks.push_back(MakeDecodeOverflowCheck());
  return checks;
}

}  // namespace rdftx_analyzer
