#!/usr/bin/env python3
"""Golden-diagnostic fixture runner for rdftx-analyzer.

Each testdata/**/*.cc fixture carries its expected diagnostics inline:

    some_code();  // expect: [<check>] <message substring>

The runner executes the analyzer in --testing mode on each fixture
(no compile database needed; fixtures are self-contained) and verifies
the actual diagnostics against the markers:

  * every marker must be matched by a diagnostic on that line, of that
    check, whose message contains the substring;
  * every diagnostic must be claimed by a marker (no surprises);
  * fixtures without markers (negatives) must produce no diagnostics
    and exit 0; fixtures with markers must exit 1.

Exit status: 0 all fixtures pass, 1 otherwise.
"""

import argparse
import os
import re
import subprocess
import sys

EXPECT_RE = re.compile(r"//\s*expect:\s*\[([a-z-]+)\]\s*(.+?)\s*$")
DIAG_RE = re.compile(r"^(?P<file>[^:]+):(?P<line>\d+):(?P<col>\d+): "
                     r"\[(?P<check>[a-z-]+)\] (?P<msg>.*)$")


def parse_markers(path):
    markers = []
    with open(path, encoding="utf-8") as f:
        for lineno, text in enumerate(f, start=1):
            m = EXPECT_RE.search(text)
            if m:
                markers.append({"line": lineno, "check": m.group(1),
                                "substr": m.group(2), "hit": False})
    return markers


def run_fixture(analyzer, path):
    """Returns a list of human-readable failure strings (empty = pass)."""
    markers = parse_markers(path)
    proc = subprocess.run(
        [analyzer, "--testing", path, "--", "-std=c++17"],
        capture_output=True, text=True)
    failures = []
    if proc.returncode == 2:
        return [f"analyzer reported a tool/parse error:\n{proc.stderr}"]
    expected_rc = 1 if markers else 0
    if proc.returncode != expected_rc:
        failures.append(f"exit status {proc.returncode}, "
                        f"expected {expected_rc}")
    diags = []
    for raw in proc.stdout.splitlines():
        if not raw.strip():
            continue
        m = DIAG_RE.match(raw)
        if not m:
            failures.append(f"unparseable diagnostic line: {raw!r}")
            continue
        diags.append({"line": int(m.group("line")),
                      "check": m.group("check"),
                      "msg": m.group("msg"), "claimed": False, "raw": raw})
    for marker in markers:
        for d in diags:
            if (not d["claimed"] and d["line"] == marker["line"]
                    and d["check"] == marker["check"]
                    and marker["substr"] in d["msg"]):
                d["claimed"] = True
                marker["hit"] = True
                break
        if not marker["hit"]:
            failures.append(
                f"line {marker['line']}: expected [{marker['check']}] "
                f"diagnostic containing {marker['substr']!r}; not emitted")
    for d in diags:
        if not d["claimed"]:
            failures.append(f"unexpected diagnostic: {d['raw']}")
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--analyzer", required=True,
                    help="path to the rdftx-analyzer binary")
    ap.add_argument("--testdata", required=True,
                    help="directory of *.cc fixtures (searched recursively)")
    args = ap.parse_args()

    fixtures = []
    for dirpath, _dirnames, filenames in os.walk(args.testdata):
        fixtures.extend(os.path.join(dirpath, f)
                        for f in filenames if f.endswith(".cc"))
    fixtures.sort()
    if not fixtures:
        print(f"no fixtures found under {args.testdata}", file=sys.stderr)
        return 1

    failed = 0
    for path in fixtures:
        rel = os.path.relpath(path, args.testdata)
        failures = run_fixture(args.analyzer, path)
        if failures:
            failed += 1
            print(f"FAIL {rel}")
            for f in failures:
                print(f"  {f}")
        else:
            print(f"PASS {rel}")
    total = len(fixtures)
    print(f"{total - failed}/{total} fixtures passed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
