// rdftx-analyzer: project-specific Clang LibTooling checks for the
// protocol rules PR 6's concurrency and durability machinery relies on.
// Runs over compile_commands.json (or single fixtures with --testing)
// and prints one diagnostic per line:
//
//   <file>:<line>:<col>: [<check>] <message>
//
// Exit status: 0 clean, 1 findings, 2 tool/parse error. The five checks
// (DESIGN.md sections 12 and 13):
//
//   lock-order       every util::Mutex in src/ carries an acquisition
//                    annotation (LEAF_MUTEX, INTERIOR_MUTEX,
//                    ACQUIRED_BEFORE/AFTER); the declared order graph is
//                    acyclic; every intra-function multi-lock scope
//                    respects it (the runtime detector in
//                    src/util/mutex.cc covers cross-function nesting).
//   epoch-lifetime   no raw Epoch/DeltaChunk pointer stored in a field
//                    outside src/rdf/; no pointer/reference derived from
//                    a function-local Epoch/DeltaChunk/TemporalGraph
//                    returned; no lambda handed to Submit/std::thread
//                    capturing epoch state by reference or raw pointer.
//   durability       in src/storage/ + src/core/, every WalWriter
//                    append reaches a *Sync* call on every acked path
//                    (error branches pruned by their ok() tests; branch
//                    conditions naming "sync" are audited opt-outs);
//                    rename/link/raw fopen-for-write are banned outside
//                    src/util/file_io.cc.
//   status           rdftx::Status / rdftx::Result discarded through a
//                    cast-to-void or a bare expression statement — the
//                    holes [[nodiscard]] + -Werror cannot see through.
//   block-handle     engine::BindingBlock ownership is RAII through
//                    BlockHandle: no `new BindingBlock` (acquire from the
//                    BlockPool instead), no BlockHandle discarded as an
//                    unused prvalue (the block bounces straight back to
//                    the pool), no .get() on a temporary handle (the raw
//                    pointer dangles once the statement ends).
//
// Suppression: `// rdftx-analyzer: allow(<check>)` on the finding's
// line or the line above. The status check additionally honours the
// lint's `// status-ignored: <why>` justification comments.

#include <algorithm>
#include <cctype>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "clang/AST/ASTConsumer.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/Attr.h"
#include "clang/AST/ParentMapContext.h"
#include "clang/AST/RecursiveASTVisitor.h"
#include "clang/Analysis/CFG.h"
#include "clang/Basic/SourceManager.h"
#include "clang/Frontend/CompilerInstance.h"
#include "clang/Frontend/FrontendAction.h"
#include "clang/Lex/Lexer.h"
#include "clang/Tooling/ArgumentsAdjusters.h"
#include "clang/Tooling/CommonOptionsParser.h"
#include "clang/Tooling/Tooling.h"
#include "llvm/Support/CommandLine.h"
#include "llvm/Support/Path.h"
#include "llvm/Support/raw_ostream.h"

using namespace clang;
namespace ct = clang::tooling;

namespace {

llvm::cl::OptionCategory kCategory("rdftx-analyzer options");
llvm::cl::opt<std::string> kSrcRoot(
    "src-root",
    llvm::cl::desc("repository root; checks scope to <root>/src/..."),
    llvm::cl::init(""), llvm::cl::cat(kCategory));
llvm::cl::opt<bool> kTesting(
    "testing",
    llvm::cl::desc("fixture mode: every main-file decl is in scope for "
                   "every check and paths print as basenames"),
    llvm::cl::init(false), llvm::cl::cat(kCategory));

// ---------------------------------------------------------------------------
// Findings
// ---------------------------------------------------------------------------

struct Finding {
  std::string file;
  unsigned line = 0;
  unsigned col = 0;
  std::string check;
  std::string msg;
};

std::vector<Finding> g_findings;
std::set<std::string> g_emitted;  // dedupe across TUs (headers reparse)

std::string Lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(c));
  return s;
}

// Source lines of a file, for suppression-comment lookup.
std::map<std::string, std::vector<std::string>> g_file_lines;

const std::vector<std::string>& FileLines(const SourceManager& sm,
                                          FileID fid,
                                          const std::string& path) {
  auto it = g_file_lines.find(path);
  if (it != g_file_lines.end()) return it->second;
  std::vector<std::string> lines;
  llvm::StringRef buf = sm.getBufferData(fid);
  while (!buf.empty()) {
    auto split = buf.split('\n');
    lines.push_back(split.first.str());
    buf = split.second;
  }
  return g_file_lines.emplace(path, std::move(lines)).first->second;
}

bool LineHas(const std::vector<std::string>& lines, unsigned line1,
             const std::string& needle) {
  if (line1 == 0 || line1 > lines.size()) return false;
  return lines[line1 - 1].find(needle) != std::string::npos;
}

// ---------------------------------------------------------------------------
// Lock-order annotation graph (accumulated across all TUs; cycle check
// and reachability run against the declared edges)
// ---------------------------------------------------------------------------

struct LockNode {
  std::string file;  // declaration site, for cycle diagnostics
  unsigned line = 0;
  unsigned col = 0;
  bool leaf = false;
  bool interior = false;
  bool annotated = false;
  std::set<std::string> succ;  // this mutex is acquired before these
};

std::map<std::string, LockNode> g_lock_graph;

bool DeclaredBefore(const std::string& from, const std::string& to) {
  std::set<std::string> seen;
  std::vector<std::string> stack{from};
  while (!stack.empty()) {
    std::string cur = stack.back();
    stack.pop_back();
    if (!seen.insert(cur).second) continue;
    auto it = g_lock_graph.find(cur);
    if (it == g_lock_graph.end()) continue;
    for (const std::string& s : it->second.succ) {
      if (s == to) return true;
      stack.push_back(s);
    }
  }
  return false;
}

bool IsLeaf(const std::string& name) {
  auto it = g_lock_graph.find(name);
  return it != g_lock_graph.end() && it->second.leaf;
}

// ---------------------------------------------------------------------------
// The per-TU checker
// ---------------------------------------------------------------------------

class Checker : public RecursiveASTVisitor<Checker> {
 public:
  explicit Checker(ASTContext& ctx) : ctx_(ctx), sm_(ctx.getSourceManager()) {}

  void Run() {
    TraverseDecl(ctx_.getTranslationUnitDecl());
    // Function bodies analyzed after the full traversal so that every
    // mutex annotation in the TU (headers included) is already in the
    // graph when scopes are judged.
    for (const FunctionDecl* fn : bodies_) {
      CheckLockScopes(fn);
      CheckEpochReturns(fn);
      CheckDurabilityCfg(fn);
      CheckStatusDiscards(fn->getBody());
    }
  }

  // ---- traversal hooks ----------------------------------------------------

  bool VisitFieldDecl(FieldDecl* fd) {
    HandleMutexDecl(fd);
    HandleEpochField(fd);
    return true;
  }

  bool VisitVarDecl(VarDecl* vd) {
    if (vd->hasGlobalStorage() && !isa<ParmVarDecl>(vd)) HandleMutexDecl(vd);
    return true;
  }

  bool VisitFunctionDecl(FunctionDecl* fn) {
    if (fn->doesThisDeclarationHaveABody() && fn->getBody() != nullptr &&
        InScope(fn->getBeginLoc())) {
      bodies_.push_back(fn);
    }
    return true;
  }

  bool VisitCallExpr(CallExpr* call) {
    HandleBannedFileOps(call);
    HandleEpochEscape(call);
    HandleBlockHandleTemporary(call);
    return true;
  }

  bool VisitCXXNewExpr(CXXNewExpr* ne) {
    if (!InScope(ne->getBeginLoc())) return true;
    if (IsBindingBlockRecord(RecordOf(ne->getAllocatedType()))) {
      Emit(ne->getBeginLoc(), "block-handle",
           "BindingBlock allocated with new; acquire it from the BlockPool "
           "so a BlockHandle owns it on every path");
    }
    return true;
  }

  bool VisitCXXConstructExpr(CXXConstructExpr* ce) {
    // std::thread(lambda): same escape rule as pool Submit().
    const CXXConstructorDecl* ctor = ce->getConstructor();
    if (ctor == nullptr) return true;
    const CXXRecordDecl* rec = ctor->getParent();
    if (rec == nullptr || rec->getName() != "thread") return true;
    for (const Expr* arg : ce->arguments()) {
      CheckLambdaArg(arg, "std::thread", ce->getBeginLoc());
    }
    return true;
  }

 private:
  // ---- location / scope helpers -------------------------------------------

  bool Locate(SourceLocation loc, std::string* file, unsigned* line,
              unsigned* col) {
    if (loc.isInvalid()) return false;
    SourceLocation exp = sm_.getExpansionLoc(loc);
    PresumedLoc p = sm_.getPresumedLoc(exp);
    if (p.isInvalid()) return false;
    *file = p.getFilename();
    *line = p.getLine();
    *col = p.getColumn();
    return true;
  }

  // True when `loc` is inside the project's checked surface: the main
  // file in --testing mode, else any file under <src-root>/src/.
  bool InScope(SourceLocation loc) {
    if (loc.isInvalid()) return false;
    SourceLocation exp = sm_.getExpansionLoc(loc);
    if (kTesting) return sm_.isInMainFile(exp);
    if (kSrcRoot.empty()) return false;
    std::string file;
    unsigned line, col;
    if (!Locate(loc, &file, &line, &col)) return false;
    std::string prefix = kSrcRoot + "/src/";
    return file.compare(0, prefix.size(), prefix) == 0;
  }

  // Durability scope: src/storage/ + src/core/ (everything in --testing).
  bool InDurabilityScope(SourceLocation loc) {
    if (!InScope(loc)) return false;
    if (kTesting) return true;
    std::string file;
    unsigned line, col;
    if (!Locate(loc, &file, &line, &col)) return false;
    return file.find("/src/storage/") != std::string::npos ||
           file.find("/src/core/") != std::string::npos;
  }

  bool Suppressed(SourceLocation loc, const std::string& check,
                  const std::string& file, unsigned line) {
    FileID fid = sm_.getFileID(sm_.getExpansionLoc(loc));
    const auto& lines = FileLines(sm_, fid, file);
    const std::string allow = "rdftx-analyzer: allow(" + check + ")";
    if (LineHas(lines, line, allow) || LineHas(lines, line - 1, allow)) {
      return true;
    }
    if (check == "status") {
      if (LineHas(lines, line, "status-ignored:") ||
          LineHas(lines, line - 1, "status-ignored:")) {
        return true;
      }
    }
    return false;
  }

  std::string DisplayPath(const std::string& file) {
    if (kTesting) return llvm::sys::path::filename(file).str();
    if (!kSrcRoot.empty() &&
        file.compare(0, kSrcRoot.size() + 1, kSrcRoot + "/") == 0) {
      return file.substr(kSrcRoot.size() + 1);
    }
    return file;
  }

  void Emit(SourceLocation loc, const std::string& check,
            const std::string& msg) {
    std::string file;
    unsigned line, col;
    if (!Locate(loc, &file, &line, &col)) return;
    if (Suppressed(loc, check, file, line)) return;
    Finding f{DisplayPath(file), line, col, check, msg};
    std::string key = f.file + ":" + std::to_string(f.line) + ":" + f.check +
                      ":" + f.msg;
    if (!g_emitted.insert(key).second) return;
    g_findings.push_back(std::move(f));
  }

  // ---- type helpers --------------------------------------------------------

  static const CXXRecordDecl* RecordOf(QualType t) {
    return t.getNonReferenceType()
        .getCanonicalType()
        .getTypePtr()
        ->getAsCXXRecordDecl();
  }

  static bool InNamespace(const Decl* d, llvm::StringRef ns) {
    for (const DeclContext* dc = d->getDeclContext(); dc != nullptr;
         dc = dc->getParent()) {
      if (const auto* n = dyn_cast<NamespaceDecl>(dc)) {
        if (n->getName() == ns) return true;
      }
    }
    return false;
  }

  static bool IsUtilMutexRecord(const CXXRecordDecl* rec) {
    return rec != nullptr && rec->getName() == "Mutex" &&
           InNamespace(rec, "util");
  }

  static bool IsUtilMutex(QualType t) { return IsUtilMutexRecord(RecordOf(t)); }

  static bool IsMutexGuard(QualType t) {
    const CXXRecordDecl* rec = RecordOf(t);
    return rec != nullptr && rec->getName() == "MutexLock" &&
           InNamespace(rec, "util");
  }

  // Epoch-lifetime target classes. `fieldRule` narrows to the two
  // transient chunk-owning classes (a long-lived TemporalGraph* field is
  // a legitimate non-owning handle).
  static bool IsEpochClass(const CXXRecordDecl* rec, bool fieldRule) {
    if (rec == nullptr) return false;
    llvm::StringRef n = rec->getName();
    if (n == "Epoch" || n == "DeltaChunk") return true;
    return !fieldRule && n == "TemporalGraph";
  }

  static bool IsBlockHandleRecord(const CXXRecordDecl* rec) {
    return rec != nullptr && rec->getName() == "BlockHandle" &&
           InNamespace(rec, "engine");
  }

  static bool IsBindingBlockRecord(const CXXRecordDecl* rec) {
    return rec != nullptr && rec->getName() == "BindingBlock" &&
           InNamespace(rec, "engine");
  }

  static bool IsStatusOrResult(QualType t) {
    const CXXRecordDecl* rec = RecordOf(t);
    if (rec == nullptr) return false;
    llvm::StringRef n = rec->getName();
    if (n != "Status" && n != "Result") return false;
    return InNamespace(rec, "rdftx");
  }

  // ---- lock-order: annotation collection ----------------------------------

  static const ValueDecl* ResolveMutexRef(const Expr* e) {
    if (e == nullptr) return nullptr;
    e = e->IgnoreParenImpCasts();
    if (const auto* uo = dyn_cast<UnaryOperator>(e)) {
      if (uo->getOpcode() == UO_AddrOf) {
        e = uo->getSubExpr()->IgnoreParenImpCasts();
      }
    }
    if (const auto* me = dyn_cast<MemberExpr>(e)) return me->getMemberDecl();
    if (const auto* dre = dyn_cast<DeclRefExpr>(e)) return dre->getDecl();
    return nullptr;
  }

  void HandleMutexDecl(ValueDecl* d) {
    if (!IsUtilMutex(d->getType())) return;
    if (!InScope(d->getLocation())) return;
    const std::string name = d->getQualifiedNameAsString();
    LockNode& node = g_lock_graph[name];
    Locate(d->getLocation(), &node.file, &node.line, &node.col);
    node.file = DisplayPath(node.file);
    for (const auto* attr : d->specific_attrs<AcquiredBeforeAttr>()) {
      node.annotated = true;
      for (const Expr* arg : attr->args()) {
        if (const ValueDecl* other = ResolveMutexRef(arg)) {
          node.succ.insert(other->getQualifiedNameAsString());
        }
      }
    }
    for (const auto* attr : d->specific_attrs<AcquiredAfterAttr>()) {
      node.annotated = true;
      for (const Expr* arg : attr->args()) {
        if (const ValueDecl* other = ResolveMutexRef(arg)) {
          g_lock_graph[other->getQualifiedNameAsString()].succ.insert(name);
        }
      }
    }
    for (const auto* attr : d->specific_attrs<AnnotateAttr>()) {
      if (attr->getAnnotation() == "rdftx::leaf_mutex") {
        node.annotated = node.leaf = true;
      } else if (attr->getAnnotation() == "rdftx::interior_mutex") {
        node.annotated = node.interior = true;
      }
    }
    if (!node.annotated) {
      Emit(d->getLocation(), "lock-order",
           "util::Mutex '" + name +
               "' lacks an acquisition-order annotation; mark it "
               "LEAF_MUTEX or INTERIOR_MUTEX, or relate it with "
               "ACQUIRED_BEFORE/ACQUIRED_AFTER");
    }
  }

  // ---- lock-order: multi-lock scope verification --------------------------

  struct HeldLock {
    const ValueDecl* decl;
    SourceLocation loc;
    bool manual;  // explicit Lock(): survives the enclosing compound
  };

  void CheckLockScopes(const FunctionDecl* fn) {
    std::vector<HeldLock> held;
    WalkLockScopes(fn->getBody(), &held);
  }

  void WalkLockScopes(const Stmt* s, std::vector<HeldLock>* held) {
    if (s == nullptr) return;
    if (const auto* cs = dyn_cast<CompoundStmt>(s)) {
      const size_t mark = held->size();
      for (const Stmt* c : cs->body()) WalkLockScopes(c, held);
      // RAII guards declared in this compound release here; explicit
      // Lock() calls persist until their Unlock() or function exit.
      std::vector<HeldLock> keep;
      for (size_t i = 0; i < held->size(); ++i) {
        if (i < mark || (*held)[i].manual) keep.push_back((*held)[i]);
      }
      held->swap(keep);
      return;
    }
    if (const auto* ds = dyn_cast<DeclStmt>(s)) {
      for (const Decl* d : ds->decls()) {
        const auto* vd = dyn_cast<VarDecl>(d);
        if (vd == nullptr || !IsMutexGuard(vd->getType())) continue;
        const Expr* init = vd->getInit();
        if (init == nullptr) continue;
        if (const auto* ewc = dyn_cast<ExprWithCleanups>(init)) {
          init = ewc->getSubExpr();
        }
        init = init->IgnoreParenImpCasts();
        if (const auto* ctor = dyn_cast<CXXConstructExpr>(init)) {
          if (ctor->getNumArgs() >= 1) {
            if (const ValueDecl* mu = ResolveMutexRef(ctor->getArg(0))) {
              OnAcquire(mu, vd->getLocation(), /*manual=*/false, held);
            }
          }
        }
      }
      return;
    }
    if (const auto* mc = dyn_cast<CXXMemberCallExpr>(s)) {
      const CXXMethodDecl* md = mc->getMethodDecl();
      if (md != nullptr && md->getDeclName().isIdentifier() &&
          IsUtilMutexRecord(md->getParent())) {
        const ValueDecl* mu = ResolveMutexRef(mc->getImplicitObjectArgument());
        if (mu != nullptr) {
          if (md->getName() == "Lock") {
            OnAcquire(mu, mc->getExprLoc(), /*manual=*/true, held);
          } else if (md->getName() == "Unlock") {
            for (auto it = held->rbegin(); it != held->rend(); ++it) {
              if (it->decl == mu) {
                held->erase(std::next(it).base());
                break;
              }
            }
          }
        }
      }
    }
    for (const Stmt* c : s->children()) WalkLockScopes(c, held);
  }

  void OnAcquire(const ValueDecl* mu, SourceLocation loc, bool manual,
                 std::vector<HeldLock>* held) {
    if (!held->empty()) {
      const HeldLock& top = held->back();
      const std::string a = top.decl->getQualifiedNameAsString();
      const std::string b = mu->getQualifiedNameAsString();
      if (top.decl == mu) {
        Emit(loc, "lock-order",
             "recursive acquisition of '" + b +
                 "'; util::Mutex is not reentrant");
      } else if (DeclaredBefore(b, a)) {
        Emit(loc, "lock-order",
             "acquires '" + b + "' while holding '" + a +
                 "', but the declared order is '" + b + "' before '" + a +
                 "'");
      } else if (IsLeaf(a)) {
        Emit(loc, "lock-order",
             "acquires '" + b + "' while leaf mutex '" + a +
                 "' is held; LEAF_MUTEX means nothing may be acquired "
                 "under it");
      } else if (!DeclaredBefore(a, b) && !IsLeaf(b)) {
        Emit(loc, "lock-order",
             "no declared acquisition order permits '" + b + "' under '" +
                 a + "'; add ACQUIRED_BEFORE/ACQUIRED_AFTER or mark '" + b +
                 "' LEAF_MUTEX");
      }
    }
    held->push_back(HeldLock{mu, loc, manual});
  }

  // ---- epoch-lifetime ------------------------------------------------------

  void HandleEpochField(FieldDecl* fd) {
    if (!InScope(fd->getLocation())) return;
    QualType t = fd->getType();
    const CXXRecordDecl* pointee = nullptr;
    if (t->isPointerType()) {
      pointee = RecordOf(t->getPointeeType());
    } else if (t->isReferenceType()) {
      pointee = RecordOf(t.getNonReferenceType());
    }
    if (!IsEpochClass(pointee, /*fieldRule=*/true)) return;
    std::string file;
    unsigned line, col;
    if (Locate(fd->getLocation(), &file, &line, &col) &&
        file.find("/rdf/") != std::string::npos) {
      return;  // the epoch machinery itself owns its chunk chains
    }
    Emit(fd->getLocation(), "epoch-lifetime",
         "raw " + pointee->getNameAsString() + " pointer stored in field '" +
             fd->getNameAsString() +
             "' may outlive its epoch; hold ownership or re-derive it per "
             "operation");
  }

  void CheckEpochReturns(const FunctionDecl* fn) {
    QualType ret = fn->getReturnType();
    if (!ret->isPointerType() && !ret->isReferenceType()) return;
    std::vector<const ReturnStmt*> returns;
    CollectReturns(fn->getBody(), &returns);
    for (const ReturnStmt* rs : returns) {
      const Expr* rv = rs->getRetValue();
      if (rv == nullptr) continue;
      const VarDecl* local = FindLocalEpochSource(rv);
      if (local == nullptr) continue;
      Emit(rs->getBeginLoc(), "epoch-lifetime",
           "returns a pointer/reference derived from local '" +
               local->getNameAsString() + "' (" +
               RecordOf(local->getType())->getNameAsString() +
               "), which is destroyed when this scope ends");
    }
  }

  static void CollectReturns(const Stmt* s,
                             std::vector<const ReturnStmt*>* out) {
    if (s == nullptr) return;
    if (isa<LambdaExpr>(s)) return;  // separate function body
    if (const auto* rs = dyn_cast<ReturnStmt>(s)) out->push_back(rs);
    for (const Stmt* c : s->children()) CollectReturns(c, out);
  }

  // A DeclRefExpr inside `e` naming a function-local, by-value
  // Epoch/DeltaChunk/TemporalGraph variable (parameters are the
  // caller's responsibility and stay exempt).
  const VarDecl* FindLocalEpochSource(const Expr* e) {
    if (e == nullptr) return nullptr;
    if (const auto* dre = dyn_cast<DeclRefExpr>(e->IgnoreParenImpCasts())) {
      const auto* vd = dyn_cast<VarDecl>(dre->getDecl());
      if (vd != nullptr && vd->hasLocalStorage() && !isa<ParmVarDecl>(vd) &&
          !vd->getType()->isReferenceType() &&
          !vd->getType()->isPointerType() &&
          IsEpochClass(RecordOf(vd->getType()), /*fieldRule=*/false)) {
        return vd;
      }
    }
    for (const Stmt* c : e->children()) {
      if (const auto* sub = dyn_cast_or_null<Expr>(c)) {
        if (const VarDecl* hit = FindLocalEpochSource(sub)) return hit;
      }
    }
    return nullptr;
  }

  void HandleEpochEscape(CallExpr* call) {
    const FunctionDecl* callee = call->getDirectCallee();
    if (callee == nullptr || !callee->getDeclName().isIdentifier()) return;
    llvm::StringRef name = callee->getName();
    if (name != "Submit" && name != "Enqueue" && name != "Schedule") return;
    for (const Expr* arg : call->arguments()) {
      CheckLambdaArg(arg, name.str(), call->getExprLoc());
    }
  }

  void CheckLambdaArg(const Expr* arg, const std::string& sink,
                      SourceLocation loc) {
    if (arg == nullptr || !InScope(loc)) return;
    const Expr* e = arg->IgnoreParenImpCasts();
    if (const auto* mte = dyn_cast<MaterializeTemporaryExpr>(e)) {
      e = mte->getSubExpr()->IgnoreParenImpCasts();
    }
    if (const auto* bte = dyn_cast<CXXBindTemporaryExpr>(e)) {
      e = bte->getSubExpr()->IgnoreParenImpCasts();
    }
    const auto* lam = dyn_cast<LambdaExpr>(e);
    if (lam == nullptr) return;
    for (const LambdaCapture& cap : lam->captures()) {
      if (!cap.capturesVariable()) continue;
      const VarDecl* vd = cap.getCapturedVar();
      if (vd == nullptr) continue;
      QualType t = vd->getType();
      bool bad = false;
      if (cap.getCaptureKind() == LCK_ByRef &&
          IsEpochClass(RecordOf(t), /*fieldRule=*/true)) {
        bad = true;  // by-ref capture of an Epoch/DeltaChunk value
      }
      if (t->isPointerType() &&
          IsEpochClass(RecordOf(t->getPointeeType()), /*fieldRule=*/true)) {
        bad = true;  // raw pointer smuggled in by copy or reference
      }
      if (bad) {
        Emit(loc, "epoch-lifetime",
             "lambda handed to '" + sink + "' captures '" +
                 vd->getNameAsString() +
                 "' whose epoch may end before the task runs; copy the "
                 "data it needs instead");
      }
    }
  }

  // ---- block-handle RAII ---------------------------------------------------

  // `pool.Acquire(n).get()`: the temporary handle releases the block at
  // the end of the full expression, so the raw pointer dangles. Bound
  // handles may hand out their pointer freely.
  void HandleBlockHandleTemporary(CallExpr* call) {
    const auto* mc = dyn_cast<CXXMemberCallExpr>(call);
    if (mc == nullptr) return;
    const CXXMethodDecl* md = mc->getMethodDecl();
    if (md == nullptr || !md->getDeclName().isIdentifier() ||
        md->getName() != "get" || !IsBlockHandleRecord(md->getParent())) {
      return;
    }
    if (!InScope(mc->getExprLoc())) return;
    const Expr* obj = mc->getImplicitObjectArgument();
    if (obj == nullptr) return;
    obj = obj->IgnoreParenImpCasts();
    if (isa<MaterializeTemporaryExpr>(obj) || obj->isPRValue()) {
      Emit(mc->getExprLoc(), "block-handle",
           "get() on a temporary BlockHandle; the block returns to the "
           "pool when this statement ends — bind the handle to a variable "
           "first");
    }
  }

  // ---- durability: banned file mutation primitives ------------------------

  void HandleBannedFileOps(CallExpr* call) {
    const FunctionDecl* callee = call->getDirectCallee();
    if (callee == nullptr || !callee->getDeclName().isIdentifier()) return;
    if (isa<CXXMethodDecl>(callee)) return;  // member fns named link etc.
    if (!InScope(call->getExprLoc())) return;
    std::string file;
    unsigned line, col;
    if (!Locate(call->getExprLoc(), &file, &line, &col)) return;
    constexpr const char* kExempt = "util/file_io.cc";
    if (file.size() >= std::string(kExempt).size() &&
        file.compare(file.size() - std::string(kExempt).size(),
                     std::string::npos, kExempt) == 0) {
      return;
    }
    llvm::StringRef name = callee->getName();
    if (name == "rename" || name == "link") {
      Emit(call->getExprLoc(), "durability",
           "'" + name.str() +
               "' outside src/util/file_io.cc bypasses the audited "
               "mutation path; use util::WriteFileAtomic / util::AppendFile");
      return;
    }
    if (name == "fopen" && call->getNumArgs() >= 2) {
      const Expr* mode = call->getArg(1)->IgnoreParenImpCasts();
      if (const auto* lit = dyn_cast<StringLiteral>(mode)) {
        llvm::StringRef m = lit->getString();
        if (m.contains('w') || m.contains('a') || m.contains('+')) {
          Emit(call->getExprLoc(), "durability",
               "raw fopen for writing outside src/util/file_io.cc; use "
               "util::WriteFileAtomic / util::AppendFile");
        }
      }
    }
  }

  // ---- durability: append post-dominated by sync --------------------------

  static bool IsWalAppend(const Stmt* s) {
    const auto* mc = dyn_cast<CXXMemberCallExpr>(s);
    if (mc == nullptr) return false;
    const CXXMethodDecl* md = mc->getMethodDecl();
    if (md == nullptr || !md->getDeclName().isIdentifier() ||
        md->getName() != "Append") {
      return false;
    }
    const CXXRecordDecl* rec = md->getParent();
    return rec != nullptr && rec->getName().contains("Wal");
  }

  static bool IsSyncCall(const Stmt* s) {
    const auto* call = dyn_cast<CallExpr>(s);
    if (call == nullptr) return false;
    const FunctionDecl* callee = call->getDirectCallee();
    if (callee == nullptr || !callee->getDeclName().isIdentifier()) {
      return false;
    }
    return callee->getName().contains("Sync");
  }

  bool IsDirectlyReturned(const Expr* e) {
    DynTypedNode node = DynTypedNode::create(*e);
    for (int hop = 0; hop < 8; ++hop) {
      DynTypedNodeList parents = ctx_.getParents(node);
      if (parents.empty()) return false;
      DynTypedNode parent = parents[0];
      if (parent.get<ReturnStmt>() != nullptr) return true;
      if (parent.get<CompoundStmt>() != nullptr ||
          parent.get<Decl>() != nullptr) {
        return false;
      }
      node = parent;
    }
    return false;
  }

  void CheckDurabilityCfg(const FunctionDecl* fn) {
    if (!InDurabilityScope(fn->getBeginLoc())) return;
    std::vector<const CXXMemberCallExpr*> appends;
    CollectWalAppends(fn->getBody(), &appends);
    if (appends.empty()) return;
    std::unique_ptr<CFG> cfg =
        CFG::buildCFG(fn, fn->getBody(), &ctx_, CFG::BuildOptions());
    if (cfg == nullptr) return;
    for (const CXXMemberCallExpr* ap : appends) {
      // A tail `return wal_.Append(...)` hands the sync obligation to
      // the caller along with the status.
      if (IsDirectlyReturned(ap)) continue;
      const CFGBlock* home = nullptr;
      size_t idx = 0;
      for (const CFGBlock* b : *cfg) {
        for (size_t i = 0; i < b->size(); ++i) {
          if (auto cs = (*b)[i].getAs<CFGStmt>()) {
            if (cs->getStmt() == ap) {
              home = b;
              idx = i;
            }
          }
        }
      }
      if (home == nullptr) continue;
      if (UnsyncedPathToExit(*cfg, home, idx + 1)) {
        Emit(ap->getExprLoc(), "durability",
             "WAL append can reach function exit without a Sync() on an "
             "acked path; sync before acknowledging, or gate the fast "
             "path on a *sync* option");
      }
    }
  }

  static void CollectWalAppends(const Stmt* s,
                                std::vector<const CXXMemberCallExpr*>* out) {
    if (s == nullptr) return;
    if (IsWalAppend(s)) out->push_back(cast<CXXMemberCallExpr>(s));
    for (const Stmt* c : s->children()) CollectWalAppends(c, out);
  }

  static bool BlockSyncsFrom(const CFGBlock* b, size_t start) {
    for (size_t i = start; i < b->size(); ++i) {
      if (auto cs = (*b)[i].getAs<CFGStmt>()) {
        if (IsSyncCall(cs->getStmt())) return true;
      }
    }
    return false;
  }

  // Successors worth following out of `b`. Branches testing a
  // *sync*-named condition are audited opt-outs (pruned entirely);
  // the failing side of an ok() test is an error return, not an ack.
  std::vector<const CFGBlock*> AckSuccessors(const CFGBlock* b) {
    std::vector<const CFGBlock*> all;
    for (const CFGBlock::AdjacentBlock& adj : b->succs()) {
      if (const CFGBlock* s = adj) all.push_back(s);
    }
    const Stmt* cond =
        const_cast<CFGBlock*>(b)->getTerminatorCondition();
    if (cond == nullptr || all.size() != 2) return all;
    CharSourceRange range =
        CharSourceRange::getTokenRange(cond->getSourceRange());
    std::string text =
        Lower(Lexer::getSourceText(range, sm_, ctx_.getLangOpts()).str());
    if (text.find("sync") != std::string::npos) return {};
    const Expr* ce = dyn_cast<Expr>(cond);
    if (ce == nullptr) return all;
    const Expr* stripped = ce->IgnoreParenImpCasts();
    bool negated = false;
    if (const auto* uo = dyn_cast<UnaryOperator>(stripped)) {
      if (uo->getOpcode() == UO_LNot) {
        negated = true;
        stripped = uo->getSubExpr()->IgnoreParenImpCasts();
      }
    }
    if (const auto* mc = dyn_cast<CXXMemberCallExpr>(stripped)) {
      const CXXMethodDecl* md = mc->getMethodDecl();
      if (md != nullptr && md->getDeclName().isIdentifier() &&
          md->getName() == "ok") {
        // succs[0] is the true branch. `!x.ok()` true → error path;
        // `x.ok()` false → error path. Prune the error side.
        return {negated ? all[1] : all[0]};
      }
    }
    return all;
  }

  bool UnsyncedPathToExit(const CFG& cfg, const CFGBlock* home,
                          size_t afterIdx) {
    if (BlockSyncsFrom(home, afterIdx)) return false;
    std::set<const CFGBlock*> seen;
    std::vector<const CFGBlock*> stack = AckSuccessors(home);
    while (!stack.empty()) {
      const CFGBlock* b = stack.back();
      stack.pop_back();
      if (!seen.insert(b).second) continue;
      if (b == &cfg.getExit()) return true;
      if (BlockSyncsFrom(b, 0)) continue;
      for (const CFGBlock* s : AckSuccessors(b)) stack.push_back(s);
    }
    return false;
  }

  // ---- status propagation --------------------------------------------------

  void CheckStatusDiscards(const Stmt* s) {
    if (s == nullptr) return;
    if (const auto* cs = dyn_cast<CompoundStmt>(s)) {
      for (const Stmt* c : cs->body()) InspectTopLevelExpr(c);
    }
    for (const Stmt* c : s->children()) CheckStatusDiscards(c);
  }

  void InspectTopLevelExpr(const Stmt* c) {
    const auto* e = dyn_cast_or_null<Expr>(c);
    if (e == nullptr || !InScope(e->getExprLoc())) return;
    const Expr* inner = e->IgnoreParens();
    if (const auto* ewc = dyn_cast<ExprWithCleanups>(inner)) {
      inner = ewc->getSubExpr()->IgnoreParens();
    }
    if (const auto* cast = dyn_cast<ExplicitCastExpr>(inner)) {
      if (cast->getType()->isVoidType()) {
        const Expr* sub = cast->getSubExprAsWritten()->IgnoreParenImpCasts();
        if (IsStatusOrResult(sub->getType())) {
          Emit(e->getExprLoc(), "status",
               "Status/Result discarded with a cast to void; call "
               "IgnoreError() or propagate it");
        } else if (IsBlockHandleRecord(RecordOf(sub->getType()))) {
          Emit(e->getExprLoc(), "block-handle",
               "BlockHandle discarded; the block returns to the pool "
               "immediately — hold the handle while the block is in use");
        }
        return;
      }
    }
    if (inner->getValueKind() == VK_PRValue) {
      if (IsStatusOrResult(inner->getType())) {
        Emit(e->getExprLoc(), "status",
             "expression result of type Status/Result is discarded; check "
             "it, propagate it, or call IgnoreError()");
      } else if (IsBlockHandleRecord(RecordOf(inner->getType()))) {
        Emit(e->getExprLoc(), "block-handle",
             "BlockHandle discarded; the block returns to the pool "
             "immediately — hold the handle while the block is in use");
      }
    }
  }

  ASTContext& ctx_;
  SourceManager& sm_;
  std::vector<const FunctionDecl*> bodies_;
};

class AnalyzerConsumer : public ASTConsumer {
 public:
  void HandleTranslationUnit(ASTContext& ctx) override {
    Checker(ctx).Run();
  }
};

class AnalyzerAction : public ASTFrontendAction {
 public:
  std::unique_ptr<ASTConsumer> CreateASTConsumer(CompilerInstance&,
                                                 llvm::StringRef) override {
    return std::make_unique<AnalyzerConsumer>();
  }
};

// Declared-order cycle check, once all TUs have contributed edges.
void CheckLockGraphAcyclic() {
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  for (const auto& [name, node] : g_lock_graph) {
    if (color[name] != 0) continue;
    std::vector<std::pair<std::string, std::vector<std::string>>> stack;
    auto succsOf = [](const std::string& n) {
      auto it = g_lock_graph.find(n);
      std::vector<std::string> out;
      if (it != g_lock_graph.end()) {
        out.assign(it->second.succ.begin(), it->second.succ.end());
      }
      return out;
    };
    color[name] = 1;
    stack.emplace_back(name, succsOf(name));
    std::vector<std::string> path{name};
    while (!stack.empty()) {
      auto& [cur, succs] = stack.back();
      if (succs.empty()) {
        color[cur] = 2;
        stack.pop_back();
        path.pop_back();
        continue;
      }
      std::string next = succs.back();
      succs.pop_back();
      if (color[next] == 1) {
        // Reconstruct readably: next -> ... -> cur -> next.
        std::string trace = next;
        bool collecting = false;
        for (const std::string& p : path) {
          if (p == next) {
            collecting = true;
            continue;
          }
          if (collecting) trace += " -> " + p;
        }
        trace += " -> " + next;
        const LockNode& at = g_lock_graph[next];
        Finding f{at.file, at.line, at.col, "lock-order",
                  "declared acquisition order contains a cycle: " + trace};
        std::string key = f.file + ":" + std::to_string(f.line) + ":" +
                          f.check + ":" + f.msg;
        if (g_emitted.insert(key).second) g_findings.push_back(std::move(f));
        continue;
      }
      if (color[next] == 0) {
        color[next] = 1;
        path.push_back(next);
        stack.emplace_back(next, succsOf(next));
      }
    }
  }
}

}  // namespace

int main(int argc, const char** argv) {
  auto options = ct::CommonOptionsParser::create(argc, argv, kCategory);
  if (!options) {
    llvm::errs() << llvm::toString(options.takeError()) << "\n";
    return 2;
  }
  ct::ClangTool tool(options->getCompilations(),
                     options->getSourcePathList());
  // The compile database is produced by whatever compiler configured the
  // build; silence its warning flags so only analyzer findings surface.
  tool.appendArgumentsAdjuster(ct::getInsertArgumentAdjuster(
      {"-Wno-everything", "-Wno-unknown-warning-option"},
      ct::ArgumentInsertPosition::END));
  const int rc = tool.run(ct::newFrontendActionFactory<AnalyzerAction>().get());
  CheckLockGraphAcyclic();
  std::sort(g_findings.begin(), g_findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.col, a.check, a.msg) <
                     std::tie(b.file, b.line, b.col, b.check, b.msg);
            });
  for (const Finding& f : g_findings) {
    llvm::outs() << f.file << ":" << f.line << ":" << f.col << ": [" << f.check
                 << "] " << f.msg << "\n";
  }
  if (rc != 0) return 2;
  return g_findings.empty() ? 0 : 1;
}
