// rdftx-analyzer: project-specific Clang LibTooling checks for the
// protocol rules the concurrency, durability and decode machinery rely
// on (DESIGN.md §12). Runs over compile_commands.json (or single
// fixtures with --testing) and prints one diagnostic per line:
//
//   <file>:<line>:<col>: [<check>] <message>
//
// Exit status: 0 clean, 1 findings, 2 tool/parse error.
//
// The driver owns the interprocedural plumbing; the checks themselves
// live in checks/check_*.cc behind the Check interface (analyzer.h):
//
//   1. per TU: a shared pre-pass records the USR call graph and a base
//      summary for every function body in scope, then each enabled
//      check's RunOnTu adds local findings, summary facts and
//      call-site obligations to the TuRecord.
//   2. globally: the TuRecords (freshly parsed or replayed from the
//      summary cache) merge into a GlobalContext; after its fixpoints
//      (may-acquire closure, sync-reachability, unwrap forwarding)
//      each check's RunGlobal resolves the obligations.
//
// --summary-cache=<file> persists the TuRecords; a repeat run reparses
// only translation units whose main file, compile command or the
// header tree changed (invalidation rules: summaries.h / DESIGN.md
// §12.4). Global findings are recomputed every run. --check=<name>
// (repeatable / comma-separated) narrows the run to named checks; a
// cached record is only replayed if it was produced with at least the
// requested checks.
//
// Checks: lock-order, epoch-lifetime, durability, status,
// block-handle, result-unwrap, interval-soundness, decode-overflow.
// Suppression: `// rdftx-analyzer: allow(<check>)` on the finding's
// line or the line above (status also honours `// status-ignored:`).

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "clang/AST/ASTConsumer.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/RecursiveASTVisitor.h"
#include "clang/Basic/SourceManager.h"
#include "clang/Frontend/CompilerInstance.h"
#include "clang/Frontend/FrontendAction.h"
#include "clang/Tooling/ArgumentsAdjusters.h"
#include "clang/Tooling/CommonOptionsParser.h"
#include "clang/Tooling/Tooling.h"
#include "llvm/Support/CommandLine.h"
#include "llvm/Support/FileSystem.h"
#include "llvm/Support/Path.h"
#include "llvm/Support/raw_ostream.h"

#include "tools/analyzer/analyzer.h"
#include "tools/analyzer/callgraph.h"
#include "tools/analyzer/summaries.h"

using namespace clang;
namespace ct = clang::tooling;

namespace rdftx_analyzer {
namespace {

llvm::cl::OptionCategory kCategory("rdftx-analyzer options");
llvm::cl::opt<std::string> kSrcRoot(
    "src-root",
    llvm::cl::desc("repository root; checks scope to <root>/src/..."),
    llvm::cl::init(""), llvm::cl::cat(kCategory));
llvm::cl::opt<bool> kTesting(
    "testing",
    llvm::cl::desc("fixture mode: every main-file decl is in scope for "
                   "every check and paths print as basenames"),
    llvm::cl::init(false), llvm::cl::cat(kCategory));
llvm::cl::list<std::string> kChecks(
    "check",
    llvm::cl::desc("run only the named check (repeatable, "
                   "comma-separated)"),
    llvm::cl::ZeroOrMore, llvm::cl::CommaSeparated, llvm::cl::cat(kCategory));
llvm::cl::opt<std::string> kSummaryCache(
    "summary-cache",
    llvm::cl::desc("persisted TuRecord cache; repeat runs reparse only "
                   "changed translation units"),
    llvm::cl::init(""), llvm::cl::cat(kCategory));

std::vector<std::unique_ptr<Check>> g_checks;

// Records under construction this run, keyed by the absolute source
// path the tool was invoked with; g_by_path additionally maps the
// SourceManager's idea of the main file back to the same record.
std::map<std::string, TuRecord> g_records;
std::map<std::string, TuRecord*> g_by_path;

// ---------------------------------------------------------------------------
// Shared pre-pass: call graph edges + base summaries
// ---------------------------------------------------------------------------

// Every direct call inside `fn`'s body (lambda bodies attribute to the
// enclosing function — a lambda's operator() is not a node the
// summaries key on) becomes a call-graph edge, and every in-scope body
// gets its base summary so the annotation bits (SYNCS_ON_ALL_PATHS,
// UNWRAPS_RESULT_ARGS, TRUSTED_DECODE) are visible globally even when
// no check adds facts of its own.
class PrePass : public RecursiveASTVisitor<PrePass> {
 public:
  explicit PrePass(TuContext& tu) : tu_(tu) {}

  void Run(ASTContext& ctx) { TraverseDecl(ctx.getTranslationUnitDecl()); }

  bool VisitFunctionDecl(FunctionDecl* fn) {
    if (!fn->doesThisDeclarationHaveABody() || fn->getBody() == nullptr) {
      return true;
    }
    if (!tu_.InScope(fn->getBeginLoc())) return true;
    tu_.SummaryFor(fn);
    const std::string caller = UsrOf(fn);
    if (!caller.empty()) CollectCalls(fn->getBody(), caller);
    return true;
  }

 private:
  void CollectCalls(const Stmt* s, const std::string& caller) {
    if (s == nullptr) return;
    if (const auto* call = dyn_cast<CallExpr>(s)) {
      if (const FunctionDecl* callee = call->getDirectCallee()) {
        tu_.record().calls.AddEdge(caller, UsrOf(callee));
      }
    }
    for (const Stmt* c : s->children()) CollectCalls(c, caller);
  }

  TuContext& tu_;
};

// ---------------------------------------------------------------------------
// Frontend action
// ---------------------------------------------------------------------------

TuRecord* RecordForMainFile(SourceManager& sm) {
  const FileEntry* fe = sm.getFileEntryForID(sm.getMainFileID());
  if (fe != nullptr) {
    const std::string real = fe->tryGetRealPathName().str();
    auto it = g_by_path.find(real);
    if (it != g_by_path.end()) return it->second;
    const std::string name = fe->getName().str();
    it = g_by_path.find(name);
    if (it != g_by_path.end()) return it->second;
  }
  // Unregistered (shouldn't happen through main()): contribute anyway.
  const std::string key =
      fe != nullptr ? fe->getName().str() : std::string("<unknown>");
  TuRecord* rec = &g_records[key];
  rec->tu_file = key;
  g_by_path[key] = rec;
  return rec;
}

class AnalyzerConsumer : public ASTConsumer {
 public:
  void HandleTranslationUnit(ASTContext& ctx) override {
    TuRecord* rec = RecordForMainFile(ctx.getSourceManager());
    TuContext tu(ctx, *rec);
    PrePass(tu).Run(ctx);
    for (const std::unique_ptr<Check>& check : g_checks) {
      if (!CheckEnabled(check->name())) continue;
      check->RunOnTu(tu);
      rec->checks_run.push_back(check->name().str());
    }
  }
};

class AnalyzerAction : public ASTFrontendAction {
 public:
  std::unique_ptr<ASTConsumer> CreateASTConsumer(CompilerInstance&,
                                                 llvm::StringRef) override {
    return std::make_unique<AnalyzerConsumer>();
  }
};

// ---------------------------------------------------------------------------
// Cache decisions
// ---------------------------------------------------------------------------

bool SupersetOfEnabled(const std::vector<std::string>& ran) {
  for (const std::unique_ptr<Check>& check : g_checks) {
    if (!CheckEnabled(check->name())) continue;
    if (std::find(ran.begin(), ran.end(), check->name().str()) == ran.end()) {
      return false;
    }
  }
  return true;
}

std::string AbsolutePath(const std::string& path) {
  llvm::SmallString<256> abs(path);
  llvm::sys::fs::make_absolute(abs);
  llvm::sys::path::remove_dots(abs, /*remove_dot_dot=*/true);
  return std::string(abs.str());
}

// ---------------------------------------------------------------------------
// main
// ---------------------------------------------------------------------------

int Main(int argc, const char** argv) {
  auto options = ct::CommonOptionsParser::create(argc, argv, kCategory);
  if (!options) {
    llvm::errs() << llvm::toString(options.takeError()) << "\n";
    return 2;
  }

  g_options.src_root = kSrcRoot;
  g_options.testing = kTesting;
  // Fixture runs are single independent TUs; caching them would only
  // let one fixture's record shadow another's.
  g_options.summary_cache = kTesting ? "" : kSummaryCache.getValue();
  g_checks = MakeAllChecks();
  for (const std::string& name : kChecks) {
    bool known = false;
    for (const std::unique_ptr<Check>& check : g_checks) {
      known = known || check->name() == name;
    }
    if (!known) {
      llvm::errs() << "rdftx-analyzer: unknown check '" << name << "'\n";
      return 2;
    }
    g_options.checks.insert(name);
  }

  SummaryCache cache;
  const uint64_t header_stamp =
      g_options.testing ? 0 : HeaderTreeStamp(g_options.src_root);
  bool have_cache = false;
  if (!g_options.summary_cache.empty()) {
    have_cache = cache.Load(g_options.summary_cache) &&
                 cache.header_stamp == header_stamp;
  }

  // Partition the requested TUs into replayable and stale.
  std::vector<std::string> stale;
  for (const std::string& path : options->getSourcePathList()) {
    const std::string abs = AbsolutePath(path);
    uint64_t mtime = 0, size = 0;
    const bool stamped = FileStamp(abs, &mtime, &size);
    uint64_t cmd_hash = 0;
    for (const ct::CompileCommand& cc :
         options->getCompilations().getCompileCommands(abs)) {
      cmd_hash = HashCommand(cc.CommandLine);
      break;
    }
    if (have_cache && stamped) {
      auto it = cache.tus.find(abs);
      if (it != cache.tus.end() && it->second.mtime == mtime &&
          it->second.size == size && it->second.cmd_hash == cmd_hash &&
          SupersetOfEnabled(it->second.checks_run)) {
        continue;  // replayed straight from the cache
      }
    }
    TuRecord* rec = &g_records[abs];
    rec->tu_file = abs;
    rec->mtime = mtime;
    rec->size = size;
    rec->cmd_hash = cmd_hash;
    g_by_path[abs] = rec;
    stale.push_back(path);
  }

  int rc = 0;
  if (!stale.empty()) {
    ct::ClangTool tool(options->getCompilations(), stale);
    // The compile database is produced by whatever compiler configured
    // the build; silence its warning flags so only analyzer findings
    // surface.
    tool.appendArgumentsAdjuster(ct::getInsertArgumentAdjuster(
        {"-Wno-everything", "-Wno-unknown-warning-option"},
        ct::ArgumentInsertPosition::END));
    rc = tool.run(ct::newFrontendActionFactory<AnalyzerAction>().get());
  }

  // Merge: freshly parsed records win over their cached predecessors;
  // every record (fresh or replayed) contributes its local findings
  // and its summaries/obligations to the global phase.
  GlobalContext global;
  std::vector<Finding> findings;
  std::set<std::string> seen;
  auto take = [&](const TuRecord& rec) {
    global.AddRecord(rec);
    for (const Finding& f : rec.local_findings) {
      if (!CheckEnabled(f.check)) continue;
      if (seen.insert(f.Key()).second) findings.push_back(f);
    }
  };
  if (have_cache) {
    for (const auto& [file, rec] : cache.tus) {
      if (g_records.count(file) == 0) take(rec);
    }
  }
  for (const auto& [file, rec] : g_records) take(rec);

  global.Finalize();
  for (const std::unique_ptr<Check>& check : g_checks) {
    if (!CheckEnabled(check->name())) continue;
    check->RunGlobal(global);
  }
  for (const Finding& f : global.GlobalFindings()) {
    if (!CheckEnabled(f.check)) continue;
    if (seen.insert(f.Key()).second) findings.push_back(f);
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.col, a.check, a.msg) <
                     std::tie(b.file, b.line, b.col, b.check, b.msg);
            });
  for (const Finding& f : findings) {
    llvm::outs() << f.file << ":" << f.line << ":" << f.col << ": ["
                 << f.check << "] " << f.msg << "\n";
  }

  // Parse failures poison the records of this run; keep the cache as
  // it was rather than persist half-analyzed TUs.
  if (!g_options.summary_cache.empty() && rc == 0) {
    cache.header_stamp = header_stamp;
    for (const auto& [file, rec] : g_records) cache.tus[file] = rec;
    cache.Save(g_options.summary_cache);
  }

  if (rc != 0) return 2;
  return findings.empty() ? 0 : 1;
}

}  // namespace
}  // namespace rdftx_analyzer

int main(int argc, const char** argv) {
  return rdftx_analyzer::Main(argc, argv);
}
