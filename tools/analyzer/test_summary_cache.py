#!/usr/bin/env python3
"""Summary-cache contract test for rdftx-analyzer.

Builds a small synthetic project (its own src/ tree + compile
database), then asserts the --summary-cache life cycle:

  1. cold run: parses every TU, exits clean, writes the cache file;
  2. warm run: identical findings, and because nothing changed every
     TU replays from the cache -- wall time must be < 50% of cold;
  3. touched run: editing one source re-analyzes it without erroring
     (the other TUs still replay).

Usage: test_summary_cache.py --analyzer <path-to-rdftx-analyzer>
"""

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time

NUM_TUS = 8
FNS_PER_TU = 48


def write_project(root):
    src = os.path.join(root, "src", "util")
    os.makedirs(src)
    with open(os.path.join(src, "gen.h"), "w") as f:
        f.write("#ifndef GEN_H_\n#define GEN_H_\n")
        f.write("namespace rdftx {\n")
        f.write("inline int helper(int x) { return x + 1; }\n")
        f.write("}  // namespace rdftx\n#endif\n")
    sources = []
    for i in range(NUM_TUS):
        path = os.path.join(src, "gen_%d.cc" % i)
        with open(path, "w") as f:
            f.write('#include "gen.h"\n\nnamespace rdftx {\n')
            for j in range(FNS_PER_TU):
                f.write("int fn_%d_%d(int x) {\n" % (i, j))
                f.write("  if (x < 0) return 0;\n")
                f.write("  return helper(x) + %d;\n}\n" % j)
            f.write("}  // namespace rdftx\n")
        sources.append(path)
    db = [
        {
            "directory": root,
            "command": "c++ -std=c++17 -I%s -c %s" % (src, p),
            "file": p,
        }
        for p in sources
    ]
    with open(os.path.join(root, "compile_commands.json"), "w") as f:
        json.dump(db, f, indent=1)
    return sources


def run(cmd):
    start = time.monotonic()
    proc = subprocess.run(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True
    )
    return proc, time.monotonic() - start


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--analyzer", required=True)
    args = parser.parse_args()
    analyzer = os.path.abspath(args.analyzer)

    root = tempfile.mkdtemp(prefix="rdftx-summary-cache-")
    try:
        sources = write_project(root)
        cache = os.path.join(root, "summaries.cache")
        cmd = [
            analyzer,
            "--src-root", root,
            "--summary-cache", cache,
            "-p", root,
        ] + sources

        cold, t_cold = run(cmd)
        if cold.returncode != 0:
            print("FAIL: cold run exited %d\nstdout:\n%s\nstderr:\n%s"
                  % (cold.returncode, cold.stdout, cold.stderr))
            return 1
        if not os.path.exists(cache):
            print("FAIL: cold run did not write the summary cache")
            return 1

        warm, t_warm = run(cmd)
        if warm.returncode != 0:
            print("FAIL: warm run exited %d\nstderr:\n%s"
                  % (warm.returncode, warm.stderr))
            return 1
        if warm.stdout != cold.stdout:
            print("FAIL: warm findings differ from cold findings\n"
                  "cold:\n%s\nwarm:\n%s" % (cold.stdout, warm.stdout))
            return 1
        if t_warm >= 0.5 * t_cold:
            print("FAIL: warm run %.3fs is not < 50%% of cold run %.3fs"
                  % (t_warm, t_cold))
            return 1

        # Invalidation: touch one TU; the run must still succeed (that
        # TU reparses, the rest replay) and stay clean.
        with open(sources[0], "a") as f:
            f.write("namespace rdftx { int fn_extra(int x)"
                    " { return x; } }\n")
        touched, _ = run(cmd)
        if touched.returncode != 0 or touched.stdout != cold.stdout:
            print("FAIL: touched run exited %d\nstdout:\n%s\nstderr:\n%s"
                  % (touched.returncode, touched.stdout, touched.stderr))
            return 1

        print("ok: cold %.3fs, warm %.3fs (%.1f%%), invalidation ok"
              % (t_cold, t_warm, 100.0 * t_warm / max(t_cold, 1e-9)))
        return 0
    finally:
        shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
