#include "tools/analyzer/callgraph.h"

#include "clang/Index/USRGeneration.h"
#include "llvm/ADT/SmallString.h"

namespace rdftx_analyzer {

std::string UsrOf(const clang::Decl* d) {
  if (d == nullptr) return "";
  llvm::SmallString<128> usr;
  if (clang::index::generateUSRForDecl(d->getCanonicalDecl(), usr)) {
    return "";
  }
  return usr.str().str();
}

}  // namespace rdftx_analyzer
