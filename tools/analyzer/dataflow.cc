#include "tools/analyzer/dataflow.h"

#include <algorithm>
#include <deque>

#include "clang/AST/ExprCXX.h"
#include "clang/AST/OperationKinds.h"

namespace rdftx_analyzer {

using namespace clang;

// ---------------------------------------------------------------------------
// Expression helpers
// ---------------------------------------------------------------------------

Subject SubjectOf(const Expr* e) {
  if (e == nullptr) return Subject();
  e = e->IgnoreParenImpCasts();
  if (const auto* dre = dyn_cast<DeclRefExpr>(e)) {
    Subject s;
    s.base = dyn_cast<VarDecl>(dre->getDecl());
    return s.base != nullptr ? s : Subject();
  }
  if (const auto* me = dyn_cast<MemberExpr>(e)) {
    Subject s = SubjectOf(me->getBase());
    if (!s.valid()) return Subject();
    const auto* vd = dyn_cast<ValueDecl>(me->getMemberDecl());
    if (vd == nullptr || !vd->getDeclName().isIdentifier()) return Subject();
    s.path += me->isArrow() ? "->" : ".";
    s.path += vd->getName().str();
    return s;
  }
  if (const auto* uo = dyn_cast<UnaryOperator>(e)) {
    if (uo->getOpcode() == UO_Deref) {
      Subject s = SubjectOf(uo->getSubExpr());
      if (!s.valid()) return Subject();
      s.path += ".*";
      return s;
    }
    return Subject();
  }
  if (const auto* oc = dyn_cast<CXXOperatorCallExpr>(e)) {
    // Overloaded operator* (Result<T>::operator*, iterators).
    if (oc->getOperator() == OO_Star && oc->getNumArgs() == 1) {
      Subject s = SubjectOf(oc->getArg(0));
      if (!s.valid()) return Subject();
      s.path += ".*";
      return s;
    }
    return Subject();
  }
  if (const auto* call = dyn_cast<CallExpr>(e)) {
    // std::move(v) / std::forward<T>(v) still denote v.
    const FunctionDecl* callee = call->getDirectCallee();
    if (callee != nullptr && callee->getDeclName().isIdentifier() &&
        (callee->getName() == "move" || callee->getName() == "forward") &&
        call->getNumArgs() == 1) {
      return SubjectOf(call->getArg(0));
    }
    return Subject();
  }
  return Subject();
}

const ValueDecl* ReferencedVar(const Expr* e) {
  Subject s = SubjectOf(e);
  return s.valid() && s.path.empty() ? s.base : nullptr;
}

bool ConstValueOf(const Expr* e, ASTContext& ctx, int64_t* out) {
  if (e == nullptr) return false;
  Optional<llvm::APSInt> v = e->getIntegerConstantExpr(ctx);
  if (!v || v->getMinSignedBits() > 64) return false;
  *out = v->getExtValue();
  return true;
}

// `v.ok()` / `obj.field.ok()` — returns the receiver subject.
static Subject OkSubject(const Expr* e) {
  const auto* mc = dyn_cast<CXXMemberCallExpr>(e);
  if (mc == nullptr) return Subject();
  const CXXMethodDecl* md = mc->getMethodDecl();
  if (md == nullptr || !md->getDeclName().isIdentifier() ||
      md->getName() != "ok") {
    return Subject();
  }
  return SubjectOf(mc->getImplicitObjectArgument());
}

static BinaryOperatorKind Flip(BinaryOperatorKind op) {
  switch (op) {
    case BO_LT: return BO_GT;
    case BO_GT: return BO_LT;
    case BO_LE: return BO_GE;
    case BO_GE: return BO_LE;
    default: return op;  // EQ symmetric
  }
}

static BinaryOperatorKind Negate(BinaryOperatorKind op) {
  switch (op) {
    case BO_LT: return BO_GE;
    case BO_GE: return BO_LT;
    case BO_GT: return BO_LE;
    case BO_LE: return BO_GT;
    case BO_NE: return BO_EQ;
    default: return BO_EQ;  // callers skip == negation
  }
}

// ---------------------------------------------------------------------------
// GuardFacts
// ---------------------------------------------------------------------------

GuardFacts::GuardFacts(const FunctionDecl* fn, ASTContext& ctx)
    : fn_(fn), ctx_(ctx) {
  if (fn == nullptr || fn->getBody() == nullptr) return;
  CFG::BuildOptions opts;
  opts.setAllAlwaysAdd();
  cfg_ = CFG::buildCFG(fn, fn->getBody(), &ctx, opts);
  if (cfg_ == nullptr) return;
  block_by_id_.assign(cfg_->getNumBlockIDs(), nullptr);
  for (const CFGBlock* b : *cfg_) {
    block_by_id_[b->getBlockID()] = b;
    for (size_t i = 0; i < b->size(); ++i) {
      if (auto cs = (*b)[i].getAs<CFGStmt>()) {
        where_.emplace(cs->getStmt(), std::make_pair(b->getBlockID(), i));
      }
    }
  }
  Run();
}

GuardFacts::~GuardFacts() = default;

static void KillOverlapping(const Subject& w, std::set<GuardFact>* facts) {
  if (!w.valid()) return;
  for (auto it = facts->begin(); it != facts->end();) {
    if (it->a.OverlapsWrite(w) || it->b.OverlapsWrite(w)) {
      it = facts->erase(it);
    } else {
      ++it;
    }
  }
}

// A member call that cannot invalidate an ok()/ordering fact about its
// object: the Result/Status observers and unwrap accessors themselves.
static bool IsBenignMember(llvm::StringRef name) {
  return name == "ok" || name == "status" || name == "value" ||
         name == "empty" || name == "size";
}

void GuardFacts::ApplyElementKills(const CFGElement& el, FactSet* facts) const {
  auto cs = el.getAs<CFGStmt>();
  if (!cs) return;
  const Stmt* s = cs->getStmt();
  if (const auto* bo = dyn_cast<BinaryOperator>(s)) {
    if (bo->isAssignmentOp() || bo->isCompoundAssignmentOp()) {
      KillOverlapping(SubjectOf(bo->getLHS()), facts);
    }
    return;
  }
  if (const auto* uo = dyn_cast<UnaryOperator>(s)) {
    if (uo->isIncrementDecrementOp()) {
      KillOverlapping(SubjectOf(uo->getSubExpr()), facts);
    } else if (uo->getOpcode() == UO_AddrOf) {
      // The pointer may reach anything inside the object: drop every
      // fact rooted at the base variable.
      Subject s2 = SubjectOf(uo->getSubExpr());
      s2.path.clear();
      KillOverlapping(s2, facts);
    }
    return;
  }
  if (const auto* oc = dyn_cast<CXXOperatorCallExpr>(s)) {
    // Overloaded v = x / v += x / ++it.
    if ((oc->isAssignmentOp() || oc->getOperator() == OO_PlusPlus ||
         oc->getOperator() == OO_MinusMinus) &&
        oc->getNumArgs() >= 1) {
      KillOverlapping(SubjectOf(oc->getArg(0)), facts);
    }
    return;
  }
  if (const auto* mc = dyn_cast<CXXMemberCallExpr>(s)) {
    const CXXMethodDecl* md = mc->getMethodDecl();
    if (md != nullptr && !md->isConst() &&
        !(md->getDeclName().isIdentifier() && IsBenignMember(md->getName()))) {
      KillOverlapping(SubjectOf(mc->getImplicitObjectArgument()), facts);
    }
    return;
  }
  if (const auto* call = dyn_cast<CallExpr>(s)) {
    // Arguments bound to non-const references may be rewritten.
    const FunctionDecl* callee = call->getDirectCallee();
    for (unsigned i = 0; i < call->getNumArgs(); ++i) {
      Subject arg = SubjectOf(call->getArg(i));
      if (!arg.valid()) continue;
      bool mutable_bind = callee == nullptr;
      if (callee != nullptr && i < callee->getNumParams()) {
        QualType pt = callee->getParamDecl(i)->getType();
        mutable_bind = pt->isReferenceType() &&
                       !pt.getNonReferenceType().isConstQualified();
      }
      if (callee == nullptr) arg.path.clear();  // unknown callee: worst case
      if (mutable_bind) KillOverlapping(arg, facts);
    }
  }
}

// Facts established by `cond` being true (branch) or false (!branch).
static void AddCondFacts(const Expr* cond, bool branch, ASTContext& ctx,
                         std::set<GuardFact>* out);

static void AddCmpFacts(const Expr* lhs_e, BinaryOperatorKind op,
                        const Expr* rhs_e, ASTContext& ctx,
                        std::set<GuardFact>* out) {
  const Subject ls = SubjectOf(lhs_e);
  const Subject rs = SubjectOf(rhs_e);
  int64_t lc = 0, rc = 0;
  const bool lconst = !ls.valid() && ConstValueOf(lhs_e, ctx, &lc);
  const bool rconst = !rs.valid() && ConstValueOf(rhs_e, ctx, &rc);
  if (ls.valid() && rs.valid()) {
    GuardFact f;
    f.kind = GuardFact::kCmp;
    f.a = ls;
    f.op = op;
    f.b = rs;
    out->insert(f);
    GuardFact g = f;  // store the flipped view too, for O(1) lookup
    g.a = rs;
    g.op = Flip(op);
    g.b = ls;
    out->insert(g);
    return;
  }
  if (ls.valid() && rconst) {
    GuardFact f;
    f.kind = GuardFact::kCmp;
    f.a = ls;
    f.op = op;
    f.rhs_const = rc;
    out->insert(f);
    return;
  }
  if (lconst && rs.valid()) {
    GuardFact f;
    f.kind = GuardFact::kCmp;
    f.a = rs;
    f.op = Flip(op);
    f.rhs_const = lc;
    out->insert(f);
  }
}

static void AddCondFacts(const Expr* cond, bool branch, ASTContext& ctx,
                         std::set<GuardFact>* out) {
  if (cond == nullptr) return;
  const Expr* e = cond->IgnoreParenImpCasts();
  if (const auto* uo = dyn_cast<UnaryOperator>(e)) {
    if (uo->getOpcode() == UO_LNot) {
      AddCondFacts(uo->getSubExpr(), !branch, ctx, out);
      return;
    }
  }
  if (const auto* bo = dyn_cast<BinaryOperator>(e)) {
    if (bo->getOpcode() == BO_LAnd) {
      if (branch) {  // (a && b) true => both true
        AddCondFacts(bo->getLHS(), true, ctx, out);
        AddCondFacts(bo->getRHS(), true, ctx, out);
      }
      return;
    }
    if (bo->getOpcode() == BO_LOr) {
      if (!branch) {  // (a || b) false => both false
        AddCondFacts(bo->getLHS(), false, ctx, out);
        AddCondFacts(bo->getRHS(), false, ctx, out);
      }
      return;
    }
    if (bo->isComparisonOp()) {
      BinaryOperatorKind op = bo->getOpcode();
      if (!branch) {
        if (op == BO_EQ) return;  // == false carries no ordering info
        op = Negate(op);
      }
      if (op == BO_NE) return;
      AddCmpFacts(bo->getLHS(), op, bo->getRHS(), ctx, out);
      return;
    }
  }
  if (branch) {
    Subject v = OkSubject(e);
    if (v.valid()) {
      GuardFact f;
      f.kind = GuardFact::kOk;
      f.a = v;
      out->insert(f);
    }
  }
}

void GuardFacts::CollectEdgeFacts(const CFGBlock* b, FactSet* true_facts,
                                  FactSet* false_facts) const {
  const Stmt* cond = const_cast<CFGBlock*>(b)->getTerminatorCondition();
  const auto* e = dyn_cast_or_null<Expr>(cond);
  if (e == nullptr) return;
  AddCondFacts(e, true, ctx_, true_facts);
  AddCondFacts(e, false, ctx_, false_facts);
}

void GuardFacts::Run() {
  const unsigned n = cfg_->getNumBlockIDs();
  block_in_.assign(n, FactSet());
  std::vector<bool> visited(n, false);

  std::deque<const CFGBlock*> work;
  const CFGBlock& entry = cfg_->getEntry();
  visited[entry.getBlockID()] = true;
  work.push_back(&entry);

  auto transfer = [this](const CFGBlock* b, FactSet facts) {
    for (size_t i = 0; i < b->size(); ++i) {
      ApplyElementKills((*b)[i], &facts);
    }
    return facts;
  };

  int iterations = 0;
  const int kMaxIterations = 4096;  // facts only shrink; this is a belt
  while (!work.empty() && ++iterations < kMaxIterations) {
    const CFGBlock* b = work.front();
    work.pop_front();
    FactSet out = transfer(b, block_in_[b->getBlockID()]);
    FactSet true_facts, false_facts;
    CollectEdgeFacts(b, &true_facts, &false_facts);

    std::vector<const CFGBlock*> succs;
    for (const CFGBlock::AdjacentBlock& adj : b->succs()) {
      succs.push_back(adj);  // may be null (unreachable)
    }
    const bool two_way = succs.size() == 2;
    for (size_t i = 0; i < succs.size(); ++i) {
      const CFGBlock* s = succs[i];
      if (s == nullptr) continue;
      FactSet edge = out;
      if (two_way) {
        const FactSet& extra = i == 0 ? true_facts : false_facts;
        edge.insert(extra.begin(), extra.end());
      }
      const unsigned id = s->getBlockID();
      bool changed = false;
      if (!visited[id]) {
        visited[id] = true;
        block_in_[id] = std::move(edge);
        changed = true;
      } else {
        // Must-analysis: intersect.
        FactSet merged;
        std::set_intersection(block_in_[id].begin(), block_in_[id].end(),
                              edge.begin(), edge.end(),
                              std::inserter(merged, merged.begin()));
        if (merged != block_in_[id]) {
          block_in_[id] = std::move(merged);
          changed = true;
        }
      }
      if (changed) work.push_back(s);
    }
  }
}

GuardFacts::FactSet GuardFacts::FactsBefore(const Stmt* at) const {
  auto it = where_.find(at);
  if (it == where_.end()) return {};
  const unsigned block_id = it->second.first;
  const size_t idx = it->second.second;
  const CFGBlock* blk =
      block_id < block_by_id_.size() ? block_by_id_[block_id] : nullptr;
  if (blk == nullptr) return {};
  FactSet facts = block_in_[block_id];
  for (size_t i = 0; i < idx; ++i) {
    ApplyElementKills((*blk)[i], &facts);
  }
  return facts;
}

bool GuardFacts::KnownOk(const Stmt* at, const Subject& v) const {
  if (cfg_ == nullptr || !v.valid()) return false;
  FactSet facts = FactsBefore(at);
  GuardFact probe;
  probe.kind = GuardFact::kOk;
  probe.a = v;
  return facts.count(probe) != 0;
}

// Upper bound on `v` implied by one fact (v <= K, v < K, v == K).
static bool FactUpperBound(const GuardFact& f, const Subject& v,
                           int64_t* bound) {
  if (f.kind != GuardFact::kCmp || !(f.a == v) || f.b.valid()) return false;
  switch (f.op) {
    case BO_LE:
    case BO_EQ:
      *bound = f.rhs_const;
      return true;
    case BO_LT:
      *bound = f.rhs_const - 1;
      return true;
    default:
      return false;
  }
}

static bool FactLowerBound(const GuardFact& f, const Subject& v,
                           int64_t* bound) {
  if (f.kind != GuardFact::kCmp || !(f.a == v) || f.b.valid()) return false;
  switch (f.op) {
    case BO_GE:
    case BO_EQ:
      *bound = f.rhs_const;
      return true;
    case BO_GT:
      *bound = f.rhs_const + 1;
      return true;
    default:
      return false;
  }
}

bool GuardFacts::ProvesLe(const Stmt* at, const Expr* lhs,
                          const Expr* rhs) const {
  if (cfg_ == nullptr) return false;
  const Subject ls = SubjectOf(lhs);
  const Subject rs = SubjectOf(rhs);
  int64_t lc = 0, rc = 0;
  const bool lconst = !ls.valid() && ConstValueOf(lhs, ctx_, &lc);
  const bool rconst = !rs.valid() && ConstValueOf(rhs, ctx_, &rc);
  if (lconst && rconst) return lc <= rc;
  if (!ls.valid() && !lconst) return false;
  if (!rs.valid() && !rconst) return false;

  FactSet facts = FactsBefore(at);
  if (ls.valid() && rs.valid()) {
    if (ls == rs) return true;  // x <= x
    for (const GuardFact& f : facts) {
      if (f.kind != GuardFact::kCmp) continue;
      if (f.a == ls && f.b == rs &&
          (f.op == BO_LE || f.op == BO_LT || f.op == BO_EQ)) {
        return true;
      }
    }
    // Constant chaining: ls <= K1, rs >= K2, K1 <= K2.
    int64_t hi = 0, lo = 0;
    bool have_hi = false, have_lo = false;
    for (const GuardFact& f : facts) {
      int64_t b = 0;
      if (FactUpperBound(f, ls, &b) && (!have_hi || b < hi)) {
        hi = b;
        have_hi = true;
      }
      if (FactLowerBound(f, rs, &b) && (!have_lo || b > lo)) {
        lo = b;
        have_lo = true;
      }
    }
    return have_hi && have_lo && hi <= lo;
  }
  if (ls.valid()) {  // ls <= rc?
    for (const GuardFact& f : facts) {
      int64_t b = 0;
      if (FactUpperBound(f, ls, &b) && b <= rc) return true;
    }
    return false;
  }
  // lc <= rs?
  for (const GuardFact& f : facts) {
    int64_t b = 0;
    if (FactLowerBound(f, rs, &b) && lc <= b) return true;
  }
  return false;
}

bool GuardFacts::HasConstUpperBound(const Stmt* at, const Subject& v,
                                    uint64_t* bound) const {
  if (cfg_ == nullptr || !v.valid()) return false;
  FactSet facts = FactsBefore(at);
  bool found = false;
  int64_t best = 0;
  for (const GuardFact& f : facts) {
    int64_t b = 0;
    if (FactUpperBound(f, v, &b)) {
      if (!found || b < best) best = b;
      found = true;
    }
  }
  if (!found) return false;
  if (bound != nullptr) {
    *bound = best < 0 ? 0 : static_cast<uint64_t>(best);
  }
  return true;
}

}  // namespace rdftx_analyzer
