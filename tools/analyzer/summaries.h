// Bottom-up function summaries, call-site obligations, the per-TU
// record that carries them, the persisted summary cache, and the
// global resolution context (DESIGN.md §12.2-§12.4).
//
// The contract: a TuRecord is everything a check's global phase may
// ever want from a translation unit. Locations inside it are already
// display paths with precomputed suppression bits, so the global phase
// runs without a SourceManager — which is what lets a warm cache run
// skip parsing entirely and still resolve every interprocedural
// obligation.
//
// Cache invalidation (DESIGN.md §12.4): a cached TuRecord is replayed
// only when (a) the cache-wide header tree stamp (max mtime over
// src/**/*.h) matches, (b) the TU main file's mtime+size match, and
// (c) the FNV-1a hash of its compile command matches, and (d) the
// record was produced with at least the currently requested checks.
// Global-phase findings are never cached — they are recomputed from
// the merged summaries on every run, warm or cold.
#ifndef RDFTX_TOOLS_ANALYZER_SUMMARIES_H_
#define RDFTX_TOOLS_ANALYZER_SUMMARIES_H_

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "tools/analyzer/analyzer.h"
#include "tools/analyzer/callgraph.h"

namespace rdftx_analyzer {

// ---------------------------------------------------------------------------
// CFG sketch: the durability check's serializable control-flow skeleton
// ---------------------------------------------------------------------------

/// One interesting event inside a CFG block, in execution order.
struct SketchEvent {
  enum Kind { kSync = 0, kAppend = 1, kCall = 2 };
  int kind = kCall;
  std::string usr;        // kCall: callee; empty for unresolvable calls
  std::string file;       // kAppend: display path of the append site
  unsigned line = 0;
  unsigned col = 0;
  bool suppressed = false;   // kAppend: allow(durability) present
  bool tail_return = false;  // kAppend: `return wal_.Append(...)`
};

/// Error-branch-pruned CFG skeleton: blocks hold their events, edges
/// are the acked successors (ok()-failure branches and *sync*-named
/// conditions already dropped at build time, exactly like the
/// intraprocedural walk of PR 7).
struct CfgSketch {
  struct Block {
    std::vector<SketchEvent> events;
    std::vector<int> succs;
  };
  std::vector<Block> blocks;
  int entry = -1;
  int exit = -1;

  bool valid() const { return entry >= 0 && exit >= 0; }
};

// ---------------------------------------------------------------------------
// Function summaries
// ---------------------------------------------------------------------------

/// Bottom-up facts about one function, keyed by its USR. Direct facts
/// only — transitive closures are computed by GlobalContext::Finalize.
struct FunctionSummary {
  std::string usr;
  std::string name;    // qualified display name
  std::string file;    // display path of the definition
  unsigned line = 0;

  // lock-order: mutexes this body may acquire (qualified names), and
  // mutexes acquired via manual Lock() still held at exit.
  std::set<std::string> may_acquire;
  std::set<std::string> held_on_exit;

  // durability: body syncs on every acked entry->exit path, either
  // proven from the sketch (fixpoint) or asserted by the
  // SYNCS_ON_ALL_PATHS annotation.
  bool annotated_syncs = false;
  CfgSketch sketch;  // only populated in the durability neighbourhood

  // result-unwrap: Result-typed params this body unwraps without a
  // dominating ok() proof, plus unguarded forwards (param i passed
  // straight into callee's param j) for the transitive closure.
  std::set<int> unwraps_params;
  std::vector<std::pair<int, std::pair<std::string, int>>> forwards_result;
  bool annotated_unwraps = false;  // UNWRAPS_RESULT_ARGS: all Result params

  // epoch-lifetime: params whose pointee may be returned as ptr/ref.
  std::set<int> returns_param_derived;

  // status: Status/Result params the body never reads (discarded
  // through the signature).
  std::set<int> swallows_status_params;

  // decode-overflow: params fed into unguarded narrow arithmetic.
  std::set<int> decode_arith_params;
  bool trusted_decode = false;  // TRUSTED_DECODE annotation

  // interval-soundness: Interval(param_i, param_j) constructions the
  // body cannot order-prove locally.
  std::vector<std::pair<int, int>> interval_param_pairs;

  void MergeFrom(const FunctionSummary& o);
};

// ---------------------------------------------------------------------------
// Obligations: call-site facts awaiting global resolution
// ---------------------------------------------------------------------------

/// A potential finding whose verdict depends on another function's
/// summary. Location and suppression are pre-resolved at collect time.
struct Obligation {
  std::string check;   // owning check name
  std::string kind;    // check-specific discriminator
  std::string file;    // display path
  unsigned line = 0;
  unsigned col = 0;
  bool suppressed = false;
  std::string callee_usr;
  int param = -1;
  std::string detail;   // check-specific (e.g. held mutex, arg text)
  std::string detail2;  // check-specific (e.g. callee display name)
};

// ---------------------------------------------------------------------------
// Lock annotation graph nodes (per-TU slice, merged globally)
// ---------------------------------------------------------------------------

struct LockNodeRec {
  std::string name;  // qualified mutex name
  std::string file;  // declaration display path
  unsigned line = 0;
  unsigned col = 0;
  bool leaf = false;
  bool interior = false;
  std::set<std::string> succ;  // acquired-before these
};

// ---------------------------------------------------------------------------
// Per-TU record + cache
// ---------------------------------------------------------------------------

struct TuRecord {
  std::string tu_file;  // absolute, real path
  uint64_t mtime = 0;
  uint64_t size = 0;
  uint64_t cmd_hash = 0;
  std::vector<std::string> checks_run;

  std::vector<Finding> local_findings;
  // deque: TuContext::SummaryFor hands out stable pointers into it.
  std::deque<FunctionSummary> summaries;
  std::vector<Obligation> obligations;
  std::vector<LockNodeRec> lock_nodes;
  CallGraph calls;
};

/// FNV-1a over the joined compile command (stable across processes,
/// unlike llvm::hash_value).
uint64_t HashCommand(const std::vector<std::string>& args);

/// mtime (epoch seconds) + size of `path`; false when unreadable.
bool FileStamp(const std::string& path, uint64_t* mtime, uint64_t* size);

/// Combined stamp over every *.h under <src_root>/src — the coarse
/// whole-cache invalidator (any header edit re-analyzes everything;
/// DESIGN.md §12.4 records why per-include tracking was rejected).
uint64_t HeaderTreeStamp(const std::string& src_root);

struct SummaryCache {
  static constexpr int kVersion = 1;
  uint64_t header_stamp = 0;
  std::map<std::string, TuRecord> tus;  // by tu_file

  bool Load(const std::string& path);   // false: absent/corrupt/old
  bool Save(const std::string& path) const;
};

// ---------------------------------------------------------------------------
// Global resolution context
// ---------------------------------------------------------------------------

class GlobalContext {
 public:
  void AddRecord(const TuRecord& rec);

  /// Runs the fixpoints (may-acquire closure, sync-reachability over
  /// sketches, result-unwrap forwarding closure). Call once, after the
  /// last AddRecord and before any query.
  void Finalize();

  // ---- queries -----------------------------------------------------------
  const FunctionSummary* SummaryOf(const std::string& usr) const;
  const std::vector<const FunctionSummary*>& AllSummaries() const {
    return ordered_;
  }
  const std::vector<Obligation>& Obligations() const { return obligations_; }
  const CallGraph& Calls() const { return calls_; }

  /// Transitive may-acquire set of `usr` (empty set for unknown USRs).
  const std::set<std::string>& MayAcquireClosure(const std::string& usr) const;

  /// Every acked path through `usr` reaches a sync (fixpoint verdict;
  /// false for unknown USRs — absence of knowledge is not durability).
  bool SyncsOnAllPaths(const std::string& usr) const;

  /// `usr` unwraps its Result param `param` without re-checking ok(),
  /// directly or through any chain of unguarded forwards.
  bool UnwrapsParam(const std::string& usr, int param) const;

  // ---- lock annotation graph --------------------------------------------
  const std::map<std::string, LockNodeRec>& LockGraph() const {
    return lock_graph_;
  }
  bool DeclaredBefore(const std::string& from, const std::string& to) const;
  bool IsLeafMutex(const std::string& name) const;

  // ---- findings ----------------------------------------------------------
  /// Suppression was pre-resolved when the obligation was collected;
  /// this only dedupes and stores.
  void EmitGlobal(Finding f);
  std::vector<Finding>& GlobalFindings() { return global_findings_; }

 private:
  bool SketchSyncsAllPaths(const CfgSketch& sketch,
                           const std::set<std::string>& sync_equiv) const;

  std::map<std::string, FunctionSummary> summaries_;
  std::vector<const FunctionSummary*> ordered_;
  std::vector<Obligation> obligations_;
  std::map<std::string, LockNodeRec> lock_graph_;
  CallGraph calls_;

  std::map<std::string, std::set<std::string>> may_acquire_closure_;
  std::set<std::string> syncs_all_paths_;
  std::set<std::pair<std::string, int>> unwraps_closure_;
  std::set<std::string> emitted_;
  std::vector<Finding> global_findings_;
  bool finalized_ = false;
};

}  // namespace rdftx_analyzer

#endif  // RDFTX_TOOLS_ANALYZER_SUMMARIES_H_
