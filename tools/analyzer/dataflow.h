// Guard-fact must-dataflow over the clang CFG (DESIGN.md §12.3),
// shared by the result-unwrap, interval-soundness and decode-overflow
// checks.
//
// Facts are simple predicates over *subjects* — a local variable or
// parameter plus an optional member/deref path (`v`, `e.start`,
// `gp.t.date`, `*s`) — that a branch makes true on one of its edges:
//
//   Ok(v)        `v.ok()` observed true (true edge of `if (v.ok())`,
//                false edge of `if (!v.ok())`)
//   Cmp(a,op,b)  `a op b` observed true, with a a subject and b a
//                subject or an integer constant; the complementary
//                fact is generated on the other edge (e.g. the false
//                edge of `if (ds > kMax) return err;` yields ds <= kMax)
//
// Propagation is a forward MUST analysis: facts intersect at merge
// points, any write that may alias a subject (assignment to it or a
// path prefix, ++/--, address-of, non-const member call, non-const-ref
// argument binding) kills every fact naming it. Queries resolve a
// statement to its (block, element) position — the CFG is built with
// every sub-expression as an element — and replay the block's kills up
// to that point, so a fact established by an earlier guard in the same
// block still counts and a kill between guard and use does not.
#ifndef RDFTX_TOOLS_ANALYZER_DATAFLOW_H_
#define RDFTX_TOOLS_ANALYZER_DATAFLOW_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "clang/AST/ASTContext.h"
#include "clang/AST/Decl.h"
#include "clang/AST/Expr.h"
#include "clang/Analysis/CFG.h"

namespace rdftx_analyzer {

/// A trackable lvalue: local/param base declaration plus a member or
/// deref path ("" = the variable itself, ".start", ".t.date", ".*").
struct Subject {
  const clang::ValueDecl* base = nullptr;
  std::string path;

  bool valid() const { return base != nullptr; }
  bool operator<(const Subject& o) const {
    return std::tie(base, path) < std::tie(o.base, o.path);
  }
  bool operator==(const Subject& o) const {
    return base == o.base && path == o.path;
  }
  /// A write to `w` may change the value this subject denotes (same
  /// base, one path a prefix of the other).
  bool OverlapsWrite(const Subject& w) const {
    if (base != w.base) return false;
    return path.compare(0, w.path.size(), w.path) == 0 ||
           w.path.compare(0, path.size(), path) == 0;
  }
};

/// Subject denoted by `e` (parens, implicit casts, std::move peeled;
/// member chains and operator*/unary-deref folded into the path), or
/// an invalid Subject when `e` is not a trackable lvalue chain.
Subject SubjectOf(const clang::Expr* e);

/// Plain local/param variable denoted by `e` (no member path), or null.
const clang::ValueDecl* ReferencedVar(const clang::Expr* e);

/// Integer-constant value of `e` (after stripping), if any.
bool ConstValueOf(const clang::Expr* e, clang::ASTContext& ctx, int64_t* out);

struct GuardFact {
  enum Kind { kOk = 0, kCmp = 1 };
  Kind kind = kOk;
  Subject a;
  clang::BinaryOperatorKind op = clang::BO_EQ;  // kCmp only
  Subject b;                                    // kCmp: rhs subject, or
  int64_t rhs_const = 0;                        // ... rhs constant

  bool operator<(const GuardFact& o) const {
    return std::tie(kind, a, op, b, rhs_const) <
           std::tie(o.kind, o.a, o.op, o.b, o.rhs_const);
  }
};

class GuardFacts {
 public:
  /// Builds the CFG for `fn` and runs the fixpoint. `Usable()` is
  /// false when no CFG could be built (callers should then treat every
  /// query as unproven — soundness over silence).
  GuardFacts(const clang::FunctionDecl* fn, clang::ASTContext& ctx);
  ~GuardFacts();

  bool Usable() const { return cfg_ != nullptr; }

  /// `v.ok()` is known true immediately before `at` executes.
  bool KnownOk(const clang::Stmt* at, const Subject& v) const;

  /// `lhs <= rhs` is provable immediately before `at`. Either side may
  /// be a subject chain or an integer constant expression; the proof
  /// uses direct facts (lhs < rhs, rhs >= lhs, lhs == rhs, ...) and
  /// constant-bound chaining (lhs <= K1, rhs >= K2, K1 <= K2).
  bool ProvesLe(const clang::Stmt* at, const clang::Expr* lhs,
                const clang::Expr* rhs) const;

  /// Some fact bounds `v` from above by a constant before `at`
  /// (v < K, v <= K or v == K); reports the tightest bound.
  bool HasConstUpperBound(const clang::Stmt* at, const Subject& v,
                          uint64_t* bound) const;

 private:
  using FactSet = std::set<GuardFact>;

  void Run();
  FactSet FactsBefore(const clang::Stmt* at) const;
  void ApplyElementKills(const clang::CFGElement& el, FactSet* facts) const;
  void CollectEdgeFacts(const clang::CFGBlock* b, FactSet* true_facts,
                        FactSet* false_facts) const;

  const clang::FunctionDecl* fn_;
  clang::ASTContext& ctx_;
  std::unique_ptr<clang::CFG> cfg_;
  // Statement -> (block id, element index) for every CFGStmt element.
  std::map<const clang::Stmt*, std::pair<unsigned, size_t>> where_;
  std::vector<const clang::CFGBlock*> block_by_id_;
  std::vector<FactSet> block_in_;  // indexed by block id
};

}  // namespace rdftx_analyzer

#endif  // RDFTX_TOOLS_ANALYZER_DATAFLOW_H_
