#include "tools/analyzer/summaries.h"

#include <algorithm>

#include "llvm/Support/Chrono.h"
#include "llvm/Support/FileSystem.h"
#include "llvm/Support/JSON.h"
#include "llvm/Support/MemoryBuffer.h"
#include "llvm/Support/raw_ostream.h"

namespace rdftx_analyzer {

namespace json = llvm::json;

// ---------------------------------------------------------------------------
// Fingerprinting
// ---------------------------------------------------------------------------

static uint64_t Fnv1a(const char* data, size_t n, uint64_t h) {
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t HashCommand(const std::vector<std::string>& args) {
  uint64_t h = 14695981039346656037ull;
  for (const std::string& a : args) {
    h = Fnv1a(a.data(), a.size(), h);
    h = Fnv1a("\x1f", 1, h);  // separator: {"ab","c"} != {"a","bc"}
  }
  return h;
}

bool FileStamp(const std::string& path, uint64_t* mtime, uint64_t* size) {
  llvm::sys::fs::file_status st;
  if (llvm::sys::fs::status(path, st)) return false;
  *mtime = static_cast<uint64_t>(
      llvm::sys::toTimeT(st.getLastModificationTime()));
  *size = st.getSize();
  return true;
}

uint64_t HeaderTreeStamp(const std::string& src_root) {
  if (src_root.empty()) return 0;
  const std::string dir = src_root + "/src";
  uint64_t h = 14695981039346656037ull;
  std::error_code ec;
  // recursive_directory_iterator yields a stable (depth-first,
  // per-directory-sorted by the OS) order is NOT guaranteed, so fold
  // order-insensitively: xor of per-file hashes.
  uint64_t acc = 0;
  for (llvm::sys::fs::recursive_directory_iterator it(dir, ec), end;
       it != end && !ec; it.increment(ec)) {
    llvm::StringRef path(it->path());
    if (!path.endswith(".h")) continue;
    uint64_t mtime = 0, size = 0;
    if (!FileStamp(path.str(), &mtime, &size)) continue;
    uint64_t fh = Fnv1a(path.data(), path.size(), h);
    fh = Fnv1a(reinterpret_cast<const char*>(&mtime), sizeof(mtime), fh);
    fh = Fnv1a(reinterpret_cast<const char*>(&size), sizeof(size), fh);
    acc ^= fh;
  }
  return acc;
}

// ---------------------------------------------------------------------------
// FunctionSummary merge (same USR seen from several TUs)
// ---------------------------------------------------------------------------

void FunctionSummary::MergeFrom(const FunctionSummary& o) {
  if (name.empty()) name = o.name;
  if (file.empty()) {
    file = o.file;
    line = o.line;
  }
  may_acquire.insert(o.may_acquire.begin(), o.may_acquire.end());
  held_on_exit.insert(o.held_on_exit.begin(), o.held_on_exit.end());
  annotated_syncs = annotated_syncs || o.annotated_syncs;
  if (!sketch.valid() && o.sketch.valid()) sketch = o.sketch;
  unwraps_params.insert(o.unwraps_params.begin(), o.unwraps_params.end());
  forwards_result.insert(forwards_result.end(), o.forwards_result.begin(),
                         o.forwards_result.end());
  annotated_unwraps = annotated_unwraps || o.annotated_unwraps;
  returns_param_derived.insert(o.returns_param_derived.begin(),
                               o.returns_param_derived.end());
  swallows_status_params.insert(o.swallows_status_params.begin(),
                                o.swallows_status_params.end());
  decode_arith_params.insert(o.decode_arith_params.begin(),
                             o.decode_arith_params.end());
  trusted_decode = trusted_decode || o.trusted_decode;
  interval_param_pairs.insert(interval_param_pairs.end(),
                              o.interval_param_pairs.begin(),
                              o.interval_param_pairs.end());
}

// ---------------------------------------------------------------------------
// JSON serialization
// ---------------------------------------------------------------------------

static json::Array StringsToJson(const std::set<std::string>& v) {
  json::Array a;
  for (const std::string& s : v) a.push_back(s);
  return a;
}

static json::Array IntsToJson(const std::set<int>& v) {
  json::Array a;
  for (int i : v) a.push_back(i);
  return a;
}

static void JsonToStrings(const json::Array* a, std::set<std::string>* out) {
  if (a == nullptr) return;
  for (const json::Value& v : *a) {
    if (auto s = v.getAsString()) out->insert(s->str());
  }
}

static void JsonToInts(const json::Array* a, std::set<int>* out) {
  if (a == nullptr) return;
  for (const json::Value& v : *a) {
    if (auto i = v.getAsInteger()) out->insert(static_cast<int>(*i));
  }
}

static json::Object SketchToJson(const CfgSketch& s) {
  json::Object o;
  o["entry"] = s.entry;
  o["exit"] = s.exit;
  json::Array blocks;
  for (const CfgSketch::Block& b : s.blocks) {
    json::Object bo;
    json::Array events;
    for (const SketchEvent& e : b.events) {
      json::Object eo;
      eo["k"] = e.kind;
      if (!e.usr.empty()) eo["usr"] = e.usr;
      if (!e.file.empty()) eo["file"] = e.file;
      if (e.line != 0) eo["line"] = static_cast<int64_t>(e.line);
      if (e.col != 0) eo["col"] = static_cast<int64_t>(e.col);
      if (e.suppressed) eo["sup"] = true;
      if (e.tail_return) eo["tail"] = true;
      events.push_back(std::move(eo));
    }
    bo["events"] = std::move(events);
    json::Array succs;
    for (int s2 : b.succs) succs.push_back(s2);
    bo["succs"] = std::move(succs);
    blocks.push_back(std::move(bo));
  }
  o["blocks"] = std::move(blocks);
  return o;
}

static CfgSketch SketchFromJson(const json::Object* o) {
  CfgSketch s;
  if (o == nullptr) return s;
  if (auto e = o->getInteger("entry")) s.entry = static_cast<int>(*e);
  if (auto e = o->getInteger("exit")) s.exit = static_cast<int>(*e);
  const json::Array* blocks = o->getArray("blocks");
  if (blocks == nullptr) return s;
  for (const json::Value& bv : *blocks) {
    const json::Object* bo = bv.getAsObject();
    CfgSketch::Block b;
    if (bo != nullptr) {
      if (const json::Array* events = bo->getArray("events")) {
        for (const json::Value& ev : *events) {
          const json::Object* eo = ev.getAsObject();
          if (eo == nullptr) continue;
          SketchEvent e;
          if (auto k = eo->getInteger("k")) e.kind = static_cast<int>(*k);
          if (auto u = eo->getString("usr")) e.usr = u->str();
          if (auto f = eo->getString("file")) e.file = f->str();
          if (auto l = eo->getInteger("line")) {
            e.line = static_cast<unsigned>(*l);
          }
          if (auto c = eo->getInteger("col")) e.col = static_cast<unsigned>(*c);
          if (auto sp = eo->getBoolean("sup")) e.suppressed = *sp;
          if (auto t = eo->getBoolean("tail")) e.tail_return = *t;
          b.events.push_back(std::move(e));
        }
      }
      if (const json::Array* succs = bo->getArray("succs")) {
        for (const json::Value& sv : *succs) {
          if (auto i = sv.getAsInteger()) b.succs.push_back(static_cast<int>(*i));
        }
      }
    }
    s.blocks.push_back(std::move(b));
  }
  return s;
}

static json::Object SummaryToJson(const FunctionSummary& f) {
  json::Object o;
  o["usr"] = f.usr;
  o["name"] = f.name;
  o["file"] = f.file;
  o["line"] = static_cast<int64_t>(f.line);
  if (!f.may_acquire.empty()) o["may_acquire"] = StringsToJson(f.may_acquire);
  if (!f.held_on_exit.empty()) {
    o["held_on_exit"] = StringsToJson(f.held_on_exit);
  }
  if (f.annotated_syncs) o["annotated_syncs"] = true;
  if (f.sketch.valid()) o["sketch"] = SketchToJson(f.sketch);
  if (!f.unwraps_params.empty()) {
    o["unwraps_params"] = IntsToJson(f.unwraps_params);
  }
  if (!f.forwards_result.empty()) {
    json::Array fwd;
    for (const auto& [from, to] : f.forwards_result) {
      json::Object fo;
      fo["param"] = from;
      fo["usr"] = to.first;
      fo["callee_param"] = to.second;
      fwd.push_back(std::move(fo));
    }
    o["forwards_result"] = std::move(fwd);
  }
  if (f.annotated_unwraps) o["annotated_unwraps"] = true;
  if (!f.returns_param_derived.empty()) {
    o["returns_param_derived"] = IntsToJson(f.returns_param_derived);
  }
  if (!f.swallows_status_params.empty()) {
    o["swallows_status_params"] = IntsToJson(f.swallows_status_params);
  }
  if (!f.decode_arith_params.empty()) {
    o["decode_arith_params"] = IntsToJson(f.decode_arith_params);
  }
  if (f.trusted_decode) o["trusted_decode"] = true;
  if (!f.interval_param_pairs.empty()) {
    json::Array pairs;
    for (const auto& [a, b] : f.interval_param_pairs) {
      json::Array p;
      p.push_back(a);
      p.push_back(b);
      pairs.push_back(std::move(p));
    }
    o["interval_param_pairs"] = std::move(pairs);
  }
  return o;
}

static FunctionSummary SummaryFromJson(const json::Object* o) {
  FunctionSummary f;
  if (o == nullptr) return f;
  if (auto s = o->getString("usr")) f.usr = s->str();
  if (auto s = o->getString("name")) f.name = s->str();
  if (auto s = o->getString("file")) f.file = s->str();
  if (auto i = o->getInteger("line")) f.line = static_cast<unsigned>(*i);
  JsonToStrings(o->getArray("may_acquire"), &f.may_acquire);
  JsonToStrings(o->getArray("held_on_exit"), &f.held_on_exit);
  if (auto b = o->getBoolean("annotated_syncs")) f.annotated_syncs = *b;
  f.sketch = SketchFromJson(o->getObject("sketch"));
  JsonToInts(o->getArray("unwraps_params"), &f.unwraps_params);
  if (const json::Array* fwd = o->getArray("forwards_result")) {
    for (const json::Value& fv : *fwd) {
      const json::Object* fo = fv.getAsObject();
      if (fo == nullptr) continue;
      int from = -1, to_param = -1;
      std::string usr;
      if (auto i = fo->getInteger("param")) from = static_cast<int>(*i);
      if (auto s = fo->getString("usr")) usr = s->str();
      if (auto i = fo->getInteger("callee_param")) {
        to_param = static_cast<int>(*i);
      }
      if (from >= 0 && to_param >= 0 && !usr.empty()) {
        f.forwards_result.emplace_back(from, std::make_pair(usr, to_param));
      }
    }
  }
  if (auto b = o->getBoolean("annotated_unwraps")) f.annotated_unwraps = *b;
  JsonToInts(o->getArray("returns_param_derived"), &f.returns_param_derived);
  JsonToInts(o->getArray("swallows_status_params"), &f.swallows_status_params);
  JsonToInts(o->getArray("decode_arith_params"), &f.decode_arith_params);
  if (auto b = o->getBoolean("trusted_decode")) f.trusted_decode = *b;
  if (const json::Array* pairs = o->getArray("interval_param_pairs")) {
    for (const json::Value& pv : *pairs) {
      const json::Array* p = pv.getAsArray();
      if (p == nullptr || p->size() != 2) continue;
      auto a = (*p)[0].getAsInteger();
      auto b = (*p)[1].getAsInteger();
      if (a && b) {
        f.interval_param_pairs.emplace_back(static_cast<int>(*a),
                                            static_cast<int>(*b));
      }
    }
  }
  return f;
}

static json::Object FindingToJson(const Finding& f) {
  json::Object o;
  o["file"] = f.file;
  o["line"] = static_cast<int64_t>(f.line);
  o["col"] = static_cast<int64_t>(f.col);
  o["check"] = f.check;
  o["msg"] = f.msg;
  return o;
}

static Finding FindingFromJson(const json::Object* o) {
  Finding f;
  if (o == nullptr) return f;
  if (auto s = o->getString("file")) f.file = s->str();
  if (auto i = o->getInteger("line")) f.line = static_cast<unsigned>(*i);
  if (auto i = o->getInteger("col")) f.col = static_cast<unsigned>(*i);
  if (auto s = o->getString("check")) f.check = s->str();
  if (auto s = o->getString("msg")) f.msg = s->str();
  return f;
}

static json::Object ObligationToJson(const Obligation& ob) {
  json::Object o;
  o["check"] = ob.check;
  o["kind"] = ob.kind;
  o["file"] = ob.file;
  o["line"] = static_cast<int64_t>(ob.line);
  o["col"] = static_cast<int64_t>(ob.col);
  if (ob.suppressed) o["sup"] = true;
  if (!ob.callee_usr.empty()) o["callee"] = ob.callee_usr;
  if (ob.param >= 0) o["param"] = ob.param;
  if (!ob.detail.empty()) o["detail"] = ob.detail;
  if (!ob.detail2.empty()) o["detail2"] = ob.detail2;
  return o;
}

static Obligation ObligationFromJson(const json::Object* o) {
  Obligation ob;
  if (o == nullptr) return ob;
  if (auto s = o->getString("check")) ob.check = s->str();
  if (auto s = o->getString("kind")) ob.kind = s->str();
  if (auto s = o->getString("file")) ob.file = s->str();
  if (auto i = o->getInteger("line")) ob.line = static_cast<unsigned>(*i);
  if (auto i = o->getInteger("col")) ob.col = static_cast<unsigned>(*i);
  if (auto b = o->getBoolean("sup")) ob.suppressed = *b;
  if (auto s = o->getString("callee")) ob.callee_usr = s->str();
  if (auto i = o->getInteger("param")) ob.param = static_cast<int>(*i);
  if (auto s = o->getString("detail")) ob.detail = s->str();
  if (auto s = o->getString("detail2")) ob.detail2 = s->str();
  return ob;
}

static json::Object LockNodeToJson(const LockNodeRec& n) {
  json::Object o;
  o["name"] = n.name;
  o["file"] = n.file;
  o["line"] = static_cast<int64_t>(n.line);
  o["col"] = static_cast<int64_t>(n.col);
  if (n.leaf) o["leaf"] = true;
  if (n.interior) o["interior"] = true;
  if (!n.succ.empty()) o["succ"] = StringsToJson(n.succ);
  return o;
}

static LockNodeRec LockNodeFromJson(const json::Object* o) {
  LockNodeRec n;
  if (o == nullptr) return n;
  if (auto s = o->getString("name")) n.name = s->str();
  if (auto s = o->getString("file")) n.file = s->str();
  if (auto i = o->getInteger("line")) n.line = static_cast<unsigned>(*i);
  if (auto i = o->getInteger("col")) n.col = static_cast<unsigned>(*i);
  if (auto b = o->getBoolean("leaf")) n.leaf = *b;
  if (auto b = o->getBoolean("interior")) n.interior = *b;
  JsonToStrings(o->getArray("succ"), &n.succ);
  return n;
}

static json::Object TuRecordToJson(const TuRecord& r) {
  json::Object o;
  o["tu_file"] = r.tu_file;
  o["mtime"] = static_cast<int64_t>(r.mtime);
  o["size"] = static_cast<int64_t>(r.size);
  // JSON int64 roundtrips exactly; store the u64 hash bit-cast.
  o["cmd_hash"] = static_cast<int64_t>(r.cmd_hash);
  json::Array checks;
  for (const std::string& c : r.checks_run) checks.push_back(c);
  o["checks_run"] = std::move(checks);
  json::Array findings;
  for (const Finding& f : r.local_findings) {
    findings.push_back(FindingToJson(f));
  }
  o["local_findings"] = std::move(findings);
  json::Array summaries;
  for (const FunctionSummary& f : r.summaries) {
    summaries.push_back(SummaryToJson(f));
  }
  o["summaries"] = std::move(summaries);
  json::Array obligations;
  for (const Obligation& ob : r.obligations) {
    obligations.push_back(ObligationToJson(ob));
  }
  o["obligations"] = std::move(obligations);
  json::Array locks;
  for (const LockNodeRec& n : r.lock_nodes) {
    locks.push_back(LockNodeToJson(n));
  }
  o["lock_nodes"] = std::move(locks);
  json::Array calls;
  for (const auto& [caller, callees] : r.calls.edges) {
    json::Object co;
    co["from"] = caller;
    co["to"] = StringsToJson(callees);
    calls.push_back(std::move(co));
  }
  o["calls"] = std::move(calls);
  return o;
}

static TuRecord TuRecordFromJson(const json::Object* o) {
  TuRecord r;
  if (o == nullptr) return r;
  if (auto s = o->getString("tu_file")) r.tu_file = s->str();
  if (auto i = o->getInteger("mtime")) r.mtime = static_cast<uint64_t>(*i);
  if (auto i = o->getInteger("size")) r.size = static_cast<uint64_t>(*i);
  if (auto i = o->getInteger("cmd_hash")) {
    r.cmd_hash = static_cast<uint64_t>(*i);
  }
  if (const json::Array* checks = o->getArray("checks_run")) {
    for (const json::Value& v : *checks) {
      if (auto s = v.getAsString()) r.checks_run.push_back(s->str());
    }
  }
  if (const json::Array* findings = o->getArray("local_findings")) {
    for (const json::Value& v : *findings) {
      r.local_findings.push_back(FindingFromJson(v.getAsObject()));
    }
  }
  if (const json::Array* summaries = o->getArray("summaries")) {
    for (const json::Value& v : *summaries) {
      r.summaries.push_back(SummaryFromJson(v.getAsObject()));
    }
  }
  if (const json::Array* obligations = o->getArray("obligations")) {
    for (const json::Value& v : *obligations) {
      r.obligations.push_back(ObligationFromJson(v.getAsObject()));
    }
  }
  if (const json::Array* locks = o->getArray("lock_nodes")) {
    for (const json::Value& v : *locks) {
      r.lock_nodes.push_back(LockNodeFromJson(v.getAsObject()));
    }
  }
  if (const json::Array* calls = o->getArray("calls")) {
    for (const json::Value& v : *calls) {
      const json::Object* co = v.getAsObject();
      if (co == nullptr) continue;
      std::string from;
      if (auto s = co->getString("from")) from = s->str();
      std::set<std::string> to;
      JsonToStrings(co->getArray("to"), &to);
      for (const std::string& t : to) r.calls.AddEdge(from, t);
    }
  }
  return r;
}

bool SummaryCache::Load(const std::string& path) {
  auto buf = llvm::MemoryBuffer::getFile(path);
  if (!buf) return false;
  auto parsed = json::parse((*buf)->getBuffer());
  if (!parsed) {
    llvm::consumeError(parsed.takeError());
    return false;
  }
  const json::Object* root = parsed->getAsObject();
  if (root == nullptr) return false;
  auto version = root->getInteger("version");
  if (!version || *version != kVersion) return false;
  if (auto h = root->getInteger("header_stamp")) {
    header_stamp = static_cast<uint64_t>(*h);
  }
  if (const json::Array* records = root->getArray("tus")) {
    for (const json::Value& v : *records) {
      TuRecord r = TuRecordFromJson(v.getAsObject());
      if (!r.tu_file.empty()) tus.emplace(r.tu_file, std::move(r));
    }
  }
  return true;
}

bool SummaryCache::Save(const std::string& path) const {
  std::error_code ec;
  llvm::raw_fd_ostream os(path, ec, llvm::sys::fs::OF_Text);
  if (ec) return false;
  json::Object root;
  root["version"] = kVersion;
  root["header_stamp"] = static_cast<int64_t>(header_stamp);
  json::Array records;
  for (const auto& [file, rec] : tus) {
    records.push_back(TuRecordToJson(rec));
  }
  root["tus"] = std::move(records);
  os << json::Value(std::move(root));
  return !os.has_error();
}

// ---------------------------------------------------------------------------
// GlobalContext
// ---------------------------------------------------------------------------

void GlobalContext::AddRecord(const TuRecord& rec) {
  for (const FunctionSummary& f : rec.summaries) {
    if (f.usr.empty()) continue;
    auto [it, fresh] = summaries_.emplace(f.usr, f);
    if (!fresh) it->second.MergeFrom(f);
  }
  obligations_.insert(obligations_.end(), rec.obligations.begin(),
                      rec.obligations.end());
  for (const LockNodeRec& n : rec.lock_nodes) {
    auto [it, fresh] = lock_graph_.emplace(n.name, n);
    if (!fresh) {
      it->second.leaf = it->second.leaf || n.leaf;
      it->second.interior = it->second.interior || n.interior;
      it->second.succ.insert(n.succ.begin(), n.succ.end());
    }
  }
  calls_.Merge(rec.calls);
}

void GlobalContext::Finalize() {
  ordered_.clear();
  for (auto& [usr, f] : summaries_) ordered_.push_back(&f);

  // --- may-acquire closure over the call graph (union fixpoint) ---
  for (const auto& [usr, f] : summaries_) {
    may_acquire_closure_[usr] = f.may_acquire;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [usr, acq] : may_acquire_closure_) {
      const std::set<std::string>* callees = calls_.CalleesOf(usr);
      if (callees == nullptr) continue;
      for (const std::string& c : *callees) {
        auto it = may_acquire_closure_.find(c);
        if (it == may_acquire_closure_.end()) continue;
        for (const std::string& m : it->second) {
          if (acq.insert(m).second) changed = true;
        }
      }
    }
  }

  // --- sync-on-all-paths fixpoint over sketches (monotone: the set of
  // sync-equivalent functions only grows, and growing it only removes
  // unsynced paths) ---
  for (const auto& [usr, f] : summaries_) {
    if (f.annotated_syncs) syncs_all_paths_.insert(usr);
  }
  changed = true;
  while (changed) {
    changed = false;
    for (const auto& [usr, f] : summaries_) {
      if (syncs_all_paths_.count(usr) != 0 || !f.sketch.valid()) continue;
      if (SketchSyncsAllPaths(f.sketch, syncs_all_paths_)) {
        syncs_all_paths_.insert(usr);
        changed = true;
      }
    }
  }

  // --- result-unwrap forwarding closure ---
  for (const auto& [usr, f] : summaries_) {
    for (int p : f.unwraps_params) unwraps_closure_.emplace(usr, p);
    if (f.annotated_unwraps) {
      // The annotation covers every param; model as a wide range.
      for (int p = 0; p < 16; ++p) unwraps_closure_.emplace(usr, p);
    }
  }
  changed = true;
  while (changed) {
    changed = false;
    for (const auto& [usr, f] : summaries_) {
      for (const auto& [from, to] : f.forwards_result) {
        if (unwraps_closure_.count({to.first, to.second}) != 0 &&
            unwraps_closure_.emplace(usr, from).second) {
          changed = true;
        }
      }
    }
  }

  finalized_ = true;
}

bool GlobalContext::SketchSyncsAllPaths(
    const CfgSketch& sketch, const std::set<std::string>& sync_equiv) const {
  // Exit unreachable from entry without passing a sync event (or a call
  // to a sync-equivalent function) => syncs on all acked paths.
  if (!sketch.valid() || sketch.blocks.empty()) return false;
  std::set<int> seen;
  std::vector<int> stack{sketch.entry};
  while (!stack.empty()) {
    int b = stack.back();
    stack.pop_back();
    if (b < 0 || b >= static_cast<int>(sketch.blocks.size())) continue;
    if (!seen.insert(b).second) continue;
    const CfgSketch::Block& blk = sketch.blocks[b];
    bool blocked = false;
    for (const SketchEvent& e : blk.events) {
      if (e.kind == SketchEvent::kSync ||
          (e.kind == SketchEvent::kCall && !e.usr.empty() &&
           sync_equiv.count(e.usr) != 0)) {
        blocked = true;
        break;
      }
    }
    if (blocked) continue;
    if (b == sketch.exit) return false;  // unsynced path reached exit
    for (int s : blk.succs) stack.push_back(s);
  }
  return true;
}

const FunctionSummary* GlobalContext::SummaryOf(const std::string& usr) const {
  auto it = summaries_.find(usr);
  return it == summaries_.end() ? nullptr : &it->second;
}

const std::set<std::string>& GlobalContext::MayAcquireClosure(
    const std::string& usr) const {
  static const std::set<std::string> kEmpty;
  auto it = may_acquire_closure_.find(usr);
  return it == may_acquire_closure_.end() ? kEmpty : it->second;
}

bool GlobalContext::SyncsOnAllPaths(const std::string& usr) const {
  return syncs_all_paths_.count(usr) != 0;
}

bool GlobalContext::UnwrapsParam(const std::string& usr, int param) const {
  return unwraps_closure_.count({usr, param}) != 0;
}

bool GlobalContext::DeclaredBefore(const std::string& from,
                                   const std::string& to) const {
  std::set<std::string> seen;
  std::vector<std::string> stack{from};
  while (!stack.empty()) {
    std::string cur = stack.back();
    stack.pop_back();
    if (!seen.insert(cur).second) continue;
    auto it = lock_graph_.find(cur);
    if (it == lock_graph_.end()) continue;
    for (const std::string& s : it->second.succ) {
      if (s == to) return true;
      stack.push_back(s);
    }
  }
  return false;
}

bool GlobalContext::IsLeafMutex(const std::string& name) const {
  auto it = lock_graph_.find(name);
  return it != lock_graph_.end() && it->second.leaf;
}

void GlobalContext::EmitGlobal(Finding f) {
  if (!emitted_.insert(f.Key()).second) return;
  global_findings_.push_back(std::move(f));
}

}  // namespace rdftx_analyzer
