// Shared infrastructure of rdftx-analyzer (DESIGN.md §12): options,
// findings, the per-TU context every check runs against, and the small
// AST taxonomy helpers (which records are util::Mutex, rdftx::Result,
// engine::BlockHandle, ...) the checks share.
//
// The analyzer is split into one translation unit per check
// (checks/check_*.cc), each implementing the Check interface below.
// A check runs in two phases:
//
//   RunOnTu     once per parsed translation unit. Emits *local*
//               findings (fully decidable inside the TU) and records
//               function summaries / call-site obligations into the
//               TU's TuRecord for the global phase.
//   RunGlobal   once at the end, over the merged summaries of every
//               TU (parsed this run or replayed from the summary
//               cache). Resolves obligations interprocedurally.
//
// Everything a global phase needs from a TU must live in the TuRecord:
// by the time RunGlobal executes the ASTs are gone (or, on a warm
// cache, were never parsed at all).
#ifndef RDFTX_TOOLS_ANALYZER_ANALYZER_H_
#define RDFTX_TOOLS_ANALYZER_ANALYZER_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "clang/AST/ASTContext.h"
#include "clang/AST/Decl.h"
#include "clang/AST/DeclCXX.h"
#include "clang/AST/Expr.h"
#include "clang/AST/ExprCXX.h"
#include "clang/Basic/SourceManager.h"
#include "llvm/ADT/StringRef.h"

namespace rdftx_analyzer {

struct TuRecord;
struct FunctionSummary;
class GlobalContext;

// ---------------------------------------------------------------------------
// Options (set once by main(), read-only everywhere else)
// ---------------------------------------------------------------------------

struct Options {
  std::string src_root;           // repository root; scope is <root>/src/
  bool testing = false;           // fixture mode: main file is the scope
  std::set<std::string> checks;   // empty = every check
  std::string summary_cache;      // path of the persisted cache ("" = off)
};

extern Options g_options;

/// True when `name` passes the --check filter (always true when the
/// filter is empty).
bool CheckEnabled(llvm::StringRef name);

// ---------------------------------------------------------------------------
// Findings
// ---------------------------------------------------------------------------

struct Finding {
  std::string file;   // display path (repo-relative, basename in --testing)
  unsigned line = 0;
  unsigned col = 0;
  std::string check;
  std::string msg;

  std::string Key() const {
    return file + ":" + std::to_string(line) + ":" + check + ":" + msg;
  }
};

// ---------------------------------------------------------------------------
// Per-TU context
// ---------------------------------------------------------------------------

/// Wraps one parsed translation unit: the ASTContext plus the location,
/// scoping, suppression and emission helpers every check shares, and
/// the TuRecord the checks write summaries and obligations into.
class TuContext {
 public:
  TuContext(clang::ASTContext& ast, TuRecord& record);

  clang::ASTContext& ast() { return ast_; }
  clang::SourceManager& sm() { return sm_; }
  TuRecord& record() { return record_; }

  /// Expansion location of `loc` as (absolute file, line, col).
  bool Locate(clang::SourceLocation loc, std::string* file, unsigned* line,
              unsigned* col);

  /// True when `loc` is inside the checked surface: the main file in
  /// --testing mode, else any file under <src-root>/src/.
  bool InScope(clang::SourceLocation loc);

  /// InScope and additionally inside one of the directory fragments
  /// (e.g. {"/src/storage/", "/src/core/"}). --testing keeps everything.
  bool InDirScope(clang::SourceLocation loc,
                  const std::vector<std::string>& fragments);

  /// `// rdftx-analyzer: allow(<check>)` on the line or the line above
  /// (the status check also honours `// status-ignored:`).
  bool Suppressed(clang::SourceLocation loc, const std::string& check,
                  const std::string& file, unsigned line);

  /// Repo-relative path (basename in --testing mode).
  std::string DisplayPath(const std::string& file);

  /// Emits a local finding unless suppressed; it is recorded in the
  /// TuRecord (and thereby the summary cache).
  void Emit(clang::SourceLocation loc, const std::string& check,
            const std::string& msg);

  /// Locates + suppression-checks a future (global-phase) diagnostic
  /// site. Returns false when the location is invalid.
  bool Describe(clang::SourceLocation loc, const std::string& check,
                std::string* display_file, unsigned* line, unsigned* col,
                bool* suppressed);

  /// The TuRecord's summary for `fn` (keyed by USR), created on first
  /// use with usr/name/file/line and the annotation bits filled in.
  /// Checks then extend it with their own facts. Returns null for
  /// declarations without a USR. The pointer is stable for the
  /// lifetime of the TuContext.
  FunctionSummary* SummaryFor(const clang::FunctionDecl* fn);

 private:
  const std::vector<std::string>& FileLines(clang::FileID fid,
                                            const std::string& path);

  clang::ASTContext& ast_;
  clang::SourceManager& sm_;
  TuRecord& record_;
  std::map<std::string, std::vector<std::string>> file_lines_;
  std::map<std::string, FunctionSummary*> summary_index_;  // by USR
};

// ---------------------------------------------------------------------------
// AST taxonomy helpers
// ---------------------------------------------------------------------------

std::string Lower(std::string s);

const clang::CXXRecordDecl* RecordOf(clang::QualType t);
bool InNamespace(const clang::Decl* d, llvm::StringRef ns);

bool IsUtilMutexRecord(const clang::CXXRecordDecl* rec);
bool IsUtilMutex(clang::QualType t);
bool IsMutexGuard(clang::QualType t);

/// Epoch-lifetime target classes; `fieldRule` narrows to the transient
/// chunk-owning classes (a long-lived TemporalGraph* field is a
/// legitimate non-owning handle).
bool IsEpochClass(const clang::CXXRecordDecl* rec, bool fieldRule);

bool IsBlockHandleRecord(const clang::CXXRecordDecl* rec);
bool IsBindingBlockRecord(const clang::CXXRecordDecl* rec);

bool IsStatusOrResult(clang::QualType t);
bool IsResultType(clang::QualType t);

/// `&mu_` / `mu_` / `obj.mu_` down to the declared mutex member/var.
const clang::ValueDecl* ResolveMutexRef(const clang::Expr* e);

/// Peels the by-value argument wrapping (copy/move CXXConstructExpr,
/// MaterializeTemporaryExpr, CXXBindTemporaryExpr, implicit casts) off
/// `e` so call-argument checks see the expression the caller wrote: a
/// DeclRef lvalue for `f(status)`, the producing call for `f(Make())`.
const clang::Expr* StripValuePass(const clang::Expr* e);

/// Decl carries __attribute__((annotate("<tag>"))).
bool HasAnnotation(const clang::Decl* d, llvm::StringRef tag);

/// Canonical declaration's qualified name (display use).
std::string QualifiedName(const clang::NamedDecl* d);

// ---------------------------------------------------------------------------
// Check interface + registry
// ---------------------------------------------------------------------------

class Check {
 public:
  virtual ~Check() = default;
  virtual llvm::StringRef name() const = 0;
  virtual void RunOnTu(TuContext& tu) = 0;
  virtual void RunGlobal(GlobalContext& g) { (void)g; }
};

/// All checks, in diagnostic-documentation order.
std::vector<std::unique_ptr<Check>> MakeAllChecks();

/// The individual factories (defined in checks/check_*.cc).
std::unique_ptr<Check> MakeLockOrderCheck();
std::unique_ptr<Check> MakeEpochLifetimeCheck();
std::unique_ptr<Check> MakeDurabilityCheck();
std::unique_ptr<Check> MakeStatusCheck();
std::unique_ptr<Check> MakeBlockHandleCheck();
std::unique_ptr<Check> MakeResultUnwrapCheck();
std::unique_ptr<Check> MakeIntervalSoundnessCheck();
std::unique_ptr<Check> MakeDecodeOverflowCheck();

}  // namespace rdftx_analyzer

#endif  // RDFTX_TOOLS_ANALYZER_ANALYZER_H_
