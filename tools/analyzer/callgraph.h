// USR-keyed call graph of the analyzed program, accumulated per
// translation unit and merged in the global phase (DESIGN.md §12.2).
//
// Nodes are Unified Symbol Resolutions (clang/Index USRs), so the same
// function observed from different TUs — declaration in a header,
// definition elsewhere, calls from anywhere — lands on one node. Edges
// are direct calls only: virtual dispatch and calls through function
// pointers are NOT modelled (the summaries' precision notes in
// DESIGN.md §12.5 spell out the consequences). Edges survive in the
// summary cache, so a warm run reassembles the whole-program graph
// without reparsing anything.
#ifndef RDFTX_TOOLS_ANALYZER_CALLGRAPH_H_
#define RDFTX_TOOLS_ANALYZER_CALLGRAPH_H_

#include <map>
#include <set>
#include <string>

#include "clang/AST/Decl.h"

namespace rdftx_analyzer {

/// USR of `d`'s canonical declaration ("" when none can be generated,
/// e.g. for builtins).
std::string UsrOf(const clang::Decl* d);

/// Caller -> callees adjacency, USR-keyed.
struct CallGraph {
  std::map<std::string, std::set<std::string>> edges;

  void AddEdge(const std::string& caller, const std::string& callee) {
    if (caller.empty() || callee.empty()) return;
    edges[caller].insert(callee);
  }

  void Merge(const CallGraph& other) {
    for (const auto& [caller, callees] : other.edges) {
      edges[caller].insert(callees.begin(), callees.end());
    }
  }

  const std::set<std::string>* CalleesOf(const std::string& usr) const {
    auto it = edges.find(usr);
    return it == edges.end() ? nullptr : &it->second;
  }
};

}  // namespace rdftx_analyzer

#endif  // RDFTX_TOOLS_ANALYZER_CALLGRAPH_H_
