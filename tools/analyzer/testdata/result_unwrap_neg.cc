// result-unwrap negatives: early-return guard, positive ok() branch,
// checked parameter, and a conditional-expression proof. No findings
// expected.
namespace rdftx {

class Status {
 public:
  bool ok() const;
};

template <typename T>
class Result {
 public:
  Result(T v);
  bool ok() const;
  const T& value() const;
  const T& operator*() const;
};

Result<int> Load();

int Trusting(Result<int> r);

int EarlyReturn() {
  Result<int> r = Load();
  if (!r.ok()) {
    return 0;
  }
  return r.value();
}

int PositiveBranch() {
  Result<int> r = Load();
  if (r.ok()) {
    return *r;
  }
  return 0;
}

int CheckedParam(Result<int> r) {
  if (!r.ok()) {
    return -1;
  }
  return r.value();
}

int ConditionalProof() {
  Result<int> r = Load();
  return r.ok() ? Trusting(r) : 0;
}

}  // namespace rdftx
