// result-unwrap true positives: value() without a dominating ok()
// check, an unwrap on the error branch, and an unwrap chained straight
// onto the producing call.
namespace rdftx {

class Status {
 public:
  bool ok() const;
};

template <typename T>
class Result {
 public:
  Result(T v);
  bool ok() const;
  const T& value() const;
  const T& operator*() const;
  Status status() const;
};

Result<int> Load();

int NoCheck() {
  Result<int> r = Load();
  return r.value();  // expect: [result-unwrap] Result 'r' unwrapped without a dominating ok() check
}

int WrongBranch() {
  Result<int> r = Load();
  if (!r.ok()) {
    return *r;  // expect: [result-unwrap] Result 'r' unwrapped without a dominating ok() check
  }
  return r.value();
}

int Immediate() {
  return Load().value();  // expect: [result-unwrap] Result returned by a call is unwrapped immediately
}

}  // namespace rdftx
