// durability interprocedural: an append whose only hope of a sync is
// a helper call stays exposed when that helper can return without
// syncing on some acked path.
namespace rdftx {

class Status {
 public:
  bool ok() const;
};

class WalWriter {
 public:
  Status Append(int rec);
  void Sync();
};

bool MaybeFlush(WalWriter* wal, bool want) {
  if (want) {
    wal->Sync();
    return true;
  }
  return false;
}

bool AckThroughHelper(WalWriter* wal, int rec) {
  Status s = wal->Append(rec);  // expect: [durability] WAL append can reach function exit without a Sync()
  if (!s.ok()) {
    return false;
  }
  MaybeFlush(wal, false);
  return true;
}

}  // namespace rdftx
