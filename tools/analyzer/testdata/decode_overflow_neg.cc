// decode-overflow negatives: range-guarded arithmetic (single bound
// and the ||-distributed pair the delta decoder uses), declared-intent
// explicit casts, and TRUSTED_DECODE waivers on the function and on a
// callee. No findings expected.
namespace rdftx {

using uint64_t = unsigned long long;
using size_t = unsigned long;

#define TRUSTED_DECODE __attribute__((annotate("rdftx::trusted_decode")))

constexpr uint64_t kChrononMax = 0xFFFFFFFEu;

uint64_t GetVarint(const unsigned char* data, size_t* pos);

uint64_t GuardedAdd(const unsigned char* data, size_t* pos, uint64_t base) {
  uint64_t ds = GetVarint(data, pos);
  if (ds > kChrononMax) {
    return 0;
  }
  return base + ds;
}

uint64_t RangePair(const unsigned char* data, size_t* pos) {
  long long d = static_cast<long long>(GetVarint(data, pos));
  if (d < -0xFFLL || d > 0xFFLL) {
    return 0;
  }
  return static_cast<uint64_t>(1000 + d);
}

uint64_t MaskedShift(const unsigned char* data, size_t* pos) {
  uint64_t z = GetVarint(data, pos);
  return static_cast<uint64_t>(z & 0x7F) << 1;
}

TRUSTED_DECODE uint64_t HotPath(const unsigned char* data, size_t* pos,
                                uint64_t prev) {
  uint64_t ds = GetVarint(data, pos);
  return prev + ds;
}

TRUSTED_DECODE uint64_t TrustedWrap(uint64_t v) { return v * 3; }

uint64_t CallerOfTrusted(const unsigned char* data, size_t* pos) {
  uint64_t raw = GetVarint(data, pos);
  return TrustedWrap(raw);
}

}  // namespace rdftx
