// status-propagation near-miss negatives: checked, propagated, or
// explicitly audited discards. The analyzer must emit nothing here.
namespace rdftx {

class Status {
 public:
  bool ok() const;
  void IgnoreError() const;
};

Status Flush();

Status Propagate() {
  // Checked and propagated: the canonical pattern.
  Status st = Flush();
  if (!st.ok()) return st;
  // Audited discard through the greppable API.
  Flush().IgnoreError();
  // status-ignored: best-effort probe; failure is irrelevant here.
  (void)Flush();
  // rdftx-analyzer: allow(status)
  Flush();
  return Status();
}

}  // namespace rdftx
