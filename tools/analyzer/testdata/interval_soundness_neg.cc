// interval-soundness negatives: one construction per accepted proof
// rule — ordered constants, zero start, open end, same-subject point
// intervals (variable and member path), and a swap guard whose both
// branches prove the order. No findings expected.
namespace rdftx {

using Chronon = unsigned int;
constexpr Chronon kChrononNow = 0xFFFFFFFFu;

struct Interval {
  Interval(Chronon s, Chronon e);
};

struct Triple {
  struct Payload {
    Chronon date;
  } t;
};

Chronon Opaque();

Interval OrderedConstants() { return Interval(3, 7); }

Interval ZeroStart(Chronon e) { return Interval(0, e); }

Interval OpenEnd(Chronon s) { return Interval(s, kChrononNow); }

Interval Point(Chronon t) { return Interval(t, t + 1); }

Interval MemberPoint(const Triple& gp) {
  return Interval(gp.t.date, gp.t.date + 1);
}

Interval Guarded() {
  Chronon s = Opaque();
  Chronon e = Opaque();
  if (s > e) {
    return Interval(e, s);
  }
  return Interval(s, e);
}

}  // namespace rdftx
