// decode-overflow true positives: unguarded +/*/<< on varint-decoded
// values, taint propagating through a derived local, an out-parameter
// seed, and a bounds check that runs only after the arithmetic has
// already wrapped.
namespace rdftx {

using uint64_t = unsigned long long;
using size_t = unsigned long;

constexpr uint64_t kChrononMax = 0xFFFFFFFEu;

uint64_t GetVarint(const unsigned char* data, size_t* pos);
bool ReadVarint(uint64_t* v);

uint64_t UnguardedAdd(const unsigned char* data, size_t* pos, uint64_t base) {
  uint64_t ds = GetVarint(data, pos);
  return base + ds;  // expect: [decode-overflow] unguarded arithmetic on decoded value 'ds'
}

uint64_t UnguardedShift(const unsigned char* data, size_t* pos) {
  uint64_t width = GetVarint(data, pos);
  return 1ull << width;  // expect: [decode-overflow] unguarded arithmetic on decoded value 'width'
}

uint64_t PropagatedTaint(const unsigned char* data, size_t* pos,
                         uint64_t base) {
  uint64_t ds = GetVarint(data, pos);
  if (ds > kChrononMax) {
    return 0;
  }
  uint64_t start = base + ds;
  return start * 2;  // expect: [decode-overflow] unguarded arithmetic on decoded value 'start'
}

uint64_t CheckAfterTheFact(uint64_t base) {
  uint64_t len = 0;
  if (!ReadVarint(&len)) {
    return 0;
  }
  uint64_t end = base + len;  // expect: [decode-overflow] unguarded arithmetic on decoded value 'len'
  if (end > kChrononMax) {
    return 0;
  }
  return end;
}

}  // namespace rdftx
