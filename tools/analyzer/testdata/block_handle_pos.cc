// block-handle true positives: BindingBlock ownership escaping the
// BlockPool/BlockHandle RAII protocol — a direct allocation, a handle
// discarded as an unused prvalue (the block bounces straight back to
// the pool), and get() on a temporary handle (the pointer dangles once
// the statement ends).
namespace rdftx {
namespace engine {

class BindingBlock {
 public:
  explicit BindingBlock(unsigned num_vars);
  unsigned size() const;
};

class BlockPool;

class BlockHandle {
 public:
  BlockHandle();
  BlockHandle(BindingBlock* block, BlockPool* pool);
  BlockHandle(BlockHandle&&);
  ~BlockHandle();
  BindingBlock* get() const;
  BindingBlock* operator->() const;
};

class BlockPool {
 public:
  BlockHandle Acquire(unsigned num_vars);
};

#define LAUNDER(expr) expr

void Holes(BlockPool* pool) {
  BindingBlock* leaked = new BindingBlock(2);  // expect: [block-handle] BindingBlock allocated with new
  pool->Acquire(2);  // expect: [block-handle] BlockHandle discarded
  static_cast<void>(pool->Acquire(2));  // expect: [block-handle] BlockHandle discarded
  LAUNDER(pool->Acquire(2));  // expect: [block-handle] BlockHandle discarded
  BindingBlock* dangling = pool->Acquire(2).get();  // expect: [block-handle] get() on a temporary BlockHandle
  leaked->size();
  dangling->size();
}

}  // namespace engine
}  // namespace rdftx
