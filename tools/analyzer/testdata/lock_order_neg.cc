// lock-order near-miss negatives: the same shapes as the positive
// fixture, but legal — declared-order nesting, a leaf acquired last,
// hand-over-hand release, and sequential (non-overlapping) scopes.
// The analyzer must emit nothing for this file.
namespace rdftx {
namespace util {
class Mutex {
 public:
  void Lock();
  void Unlock();
};
class MutexLock {
 public:
  explicit MutexLock(Mutex* mu);
  ~MutexLock();
};
}  // namespace util
}  // namespace rdftx

#define ACQUIRED_BEFORE(...) __attribute__((acquired_before(__VA_ARGS__)))
#define ACQUIRED_AFTER(...) __attribute__((acquired_after(__VA_ARGS__)))
#define LEAF_MUTEX __attribute__((annotate("rdftx::leaf_mutex")))
#define INTERIOR_MUTEX __attribute__((annotate("rdftx::interior_mutex")))

namespace rdftx {

class Store {
 public:
  // Nesting along the declared edge: legal.
  void Ordered() {
    util::MutexLock g1(&outer_);
    util::MutexLock g2(&inner_);
  }
  // A leaf may always be the innermost lock under a non-leaf.
  void LeafLast() {
    util::MutexLock g(&inner_);
    leaf_.Lock();
    leaf_.Unlock();
  }
  // Hand-over-hand: release the first before taking the "wrong" one.
  void HandOverHand() {
    inner_.Lock();
    inner_.Unlock();
    outer_.Lock();
    outer_.Unlock();
  }
  // Sequential scopes never overlap: the near miss of Inverted().
  void Sequential() {
    { util::MutexLock g(&inner_); }
    { util::MutexLock g(&outer_); }
  }

 private:
  util::Mutex outer_ INTERIOR_MUTEX ACQUIRED_BEFORE(inner_);
  util::Mutex inner_ ACQUIRED_AFTER(outer_);
  util::Mutex leaf_ LEAF_MUTEX;
};

}  // namespace rdftx
