// status interprocedural: a freshly produced Status handed to a
// callee that never examines the parameter is silently dropped; a
// callee that reads it keeps the call site clean.
namespace rdftx {

class Status {
 public:
  bool ok() const;
};

Status Flush();

void Swallow(Status s) {}

void LogAndKeep(Status s) { s.ok(); }

void Ack() {
  Swallow(Flush());  // expect: [status] Status/Result passed to 'rdftx::Swallow' which never examines it
}

void Checked() { LogAndKeep(Flush()); }

}  // namespace rdftx
