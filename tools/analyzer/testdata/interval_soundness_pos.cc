// interval-soundness true positives: inverted constant bounds, opaque
// bounds with no guard, and a guard that proves the wrong direction.
namespace rdftx {

using Chronon = unsigned int;

struct Interval {
  Interval(Chronon s, Chronon e);
  Chronon start;
  Chronon end;
};

Chronon Opaque();

Interval InvertedConstants() {
  return Interval(7, 3);  // expect: [interval-soundness] cannot prove start <= end for this Interval construction
}

Interval OpaqueBounds() {
  Chronon s = Opaque();
  Chronon e = Opaque();
  return Interval(s, e);  // expect: [interval-soundness] cannot prove start <= end for this Interval construction
}

Interval GuardedBackwards(Chronon t) {
  Chronon now = Opaque();
  if (t < now) {
    return Interval(now, t);  // expect: [interval-soundness] cannot prove start <= end for this Interval construction
  }
  return Interval(0, t);
}

}  // namespace rdftx
