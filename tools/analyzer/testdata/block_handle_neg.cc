// block-handle negatives: the RAII protocol followed — handles bound to
// variables (alone or in containers), pointers taken from bound handles,
// arrow access through a temporary inside one full expression (the
// temporary outlives the use), and an audited suppression.
namespace rdftx {
namespace engine {

class BindingBlock {
 public:
  explicit BindingBlock(unsigned num_vars);
  unsigned size() const;
};

class BlockPool;

class BlockHandle {
 public:
  BlockHandle();
  BlockHandle(BindingBlock* block, BlockPool* pool);
  BlockHandle(BlockHandle&&);
  ~BlockHandle();
  BindingBlock* get() const;
  BindingBlock* operator->() const;
};

class BlockPool {
 public:
  BlockHandle Acquire(unsigned num_vars);
};

unsigned Owned(BlockPool* pool) {
  BlockHandle h = pool->Acquire(2);
  BindingBlock* b = h.get();        // bound handle: pointer is covered
  const unsigned direct = pool->Acquire(2)->size();  // dies after the use
  BlockHandle moved = static_cast<BlockHandle&&>(h);
  // rdftx-analyzer: allow(block-handle)
  pool->Acquire(2);
  return b->size() + moved->size() + direct;
}

}  // namespace engine
}  // namespace rdftx
