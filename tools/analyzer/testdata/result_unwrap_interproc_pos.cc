// result-unwrap interprocedural: a helper that unwraps its Result
// parameter — directly, through a forwarding chain, or by
// UNWRAPS_RESULT_ARGS contract on a body-less declaration — obliges
// every caller to prove ok() at the call site.
namespace rdftx {

class Status {
 public:
  bool ok() const;
};

template <typename T>
class Result {
 public:
  Result(T v);
  bool ok() const;
  const T& value() const;
};

Result<int> Load();

#define UNWRAPS_RESULT_ARGS \
  __attribute__((annotate("rdftx::unwraps_result_args")))

int UseValue(Result<int> r) { return r.value(); }

int Forward(Result<int> r) { return UseValue(r); }

UNWRAPS_RESULT_ARGS int Consume(Result<int> r);

int CallsDirect() {
  Result<int> r = Load();
  return UseValue(r);  // expect: [result-unwrap] Result 'r' is passed to 'rdftx::UseValue' which unwraps it
}

int CallsChain() {
  Result<int> r = Load();
  return Forward(r);  // expect: [result-unwrap] Result 'r' is passed to 'rdftx::Forward' which unwraps it
}

int CallsAnnotated() {
  Result<int> r = Load();
  return Consume(r);  // expect: [result-unwrap] Result 'r' is passed to 'rdftx::Consume' which unwraps it
}

int CheckedCaller() {
  Result<int> r = Load();
  if (!r.ok()) {
    return 0;
  }
  return UseValue(r);
}

}  // namespace rdftx
