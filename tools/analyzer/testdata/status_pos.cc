// status-propagation true positives: the discard holes that
// [[nodiscard]] + -Werror cannot see through — casts to void and bare
// expression statements (e.g. laundered through a macro).
namespace rdftx {

class Status {
 public:
  bool ok() const;
  void IgnoreError() const;
};

template <typename T>
class Result {
 public:
  bool ok() const;
  void IgnoreError() const;
};

Status Flush();
Result<int> Load();

#define LAUNDER(expr) expr

Status CastHoles() {
  (void)Flush();  // expect: [status] Status/Result discarded with a cast to void
  static_cast<void>(Load());  // expect: [status] Status/Result discarded with a cast to void
  LAUNDER(Flush());  // expect: [status] expression result of type Status/Result is discarded
  return Status();
}

}  // namespace rdftx
