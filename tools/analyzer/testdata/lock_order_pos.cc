// lock-order true positives: missing annotation, inverted acquisition,
// acquisition under a leaf, recursive acquisition, declared-order cycle.
// Self-contained stubs: the check keys on names (util::Mutex,
// util::MutexLock) and the thread-safety / annotate attributes.
namespace rdftx {
namespace util {
class Mutex {
 public:
  void Lock();
  void Unlock();
};
class MutexLock {
 public:
  explicit MutexLock(Mutex* mu);
  ~MutexLock();
};
}  // namespace util
}  // namespace rdftx

#define ACQUIRED_BEFORE(...) __attribute__((acquired_before(__VA_ARGS__)))
#define ACQUIRED_AFTER(...) __attribute__((acquired_after(__VA_ARGS__)))
#define LEAF_MUTEX __attribute__((annotate("rdftx::leaf_mutex")))

namespace rdftx {

class Store {
 public:
  void Inverted() {
    util::MutexLock a(&inner_);
    util::MutexLock b(&outer_);  // expect: [lock-order] acquires 'rdftx::Store::outer_' while holding 'rdftx::Store::inner_'
  }
  void UnderLeaf() {
    leaf_.Lock();
    inner_.Lock();  // expect: [lock-order] while leaf mutex 'rdftx::Store::leaf_' is held
    inner_.Unlock();
    leaf_.Unlock();
  }
  void Recursive() {
    util::MutexLock a(&outer_);
    util::MutexLock b(&outer_);  // expect: [lock-order] recursive acquisition
  }

 private:
  util::Mutex outer_ ACQUIRED_BEFORE(inner_);
  util::Mutex inner_ ACQUIRED_AFTER(outer_);
  util::Mutex leaf_ LEAF_MUTEX;
  util::Mutex naked_;  // expect: [lock-order] lacks an acquisition-order annotation
};

class Cycle {
 private:
  util::Mutex x_ ACQUIRED_BEFORE(y_);  // expect: [lock-order] declared acquisition order contains a cycle
  util::Mutex y_ ACQUIRED_BEFORE(x_);
};

}  // namespace rdftx
