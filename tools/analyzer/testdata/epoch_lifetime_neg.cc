// epoch-lifetime near-miss negatives: owning handles, member-accessor
// returns, parameter-derived pointers (the caller's epoch outlives the
// call), value captures, and lambdas that never leave the scope.
// The analyzer must emit nothing for this file.
namespace rdftx {

class DeltaChunk {
 public:
  int* data();
};

class Epoch {
 public:
  DeltaChunk* chunk();
};

// Smart-pointer-shaped owner: the field's type is not a raw pointer.
template <typename T>
class Owned {
 public:
  T* get();

 private:
  T* ptr_;
};

class ThreadPool {
 public:
  template <typename Fn>
  void Submit(Fn fn);
};

class Snapshot {
 public:
  // Accessor returning member state: the reference lives as long as
  // the owner, not a dying local.
  Epoch& epoch() { return epoch_; }

 private:
  Epoch epoch_;
  Owned<DeltaChunk> chunk_;
};

// Parameter-derived pointer: the caller's epoch is still open.
DeltaChunk* FromParam(Epoch& e) { return e.chunk(); }

// Capturing the epoch BY VALUE copies it; no raw aliasing escapes.
void CopiedCapture(ThreadPool* pool, const Epoch& e) {
  pool->Submit([e]() mutable { ; });
}

// A lambda that never leaves this scope may borrow freely.
int InlineUse(Epoch* e) {
  auto probe = [e] { return e->chunk(); };
  probe();
  return 0;
}

}  // namespace rdftx
