// block-handle interprocedural: a temporary handle passed to a helper
// whose summary says it returns the raw pointer of that parameter
// dangles when the statement ends; a helper with an unknown body stays
// silent.
namespace rdftx {
namespace engine {

class BindingBlock {
 public:
  int rows;
};

class BlockHandle {
 public:
  BindingBlock* get() const;
};

class BlockPool {
 public:
  BlockHandle Acquire(int n);
};

BindingBlock* Raw(BlockHandle h) { return h.get(); }

BindingBlock* CopyOut(BlockHandle h);

BindingBlock* Dangles(BlockPool& pool) {
  return Raw(pool.Acquire(64));  // expect: [block-handle] temporary BlockHandle passed to 'rdftx::engine::Raw'
}

BindingBlock* Unknown(BlockPool& pool) {
  return CopyOut(pool.Acquire(64));
}

}  // namespace engine
}  // namespace rdftx
