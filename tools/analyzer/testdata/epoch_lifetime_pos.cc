// epoch-lifetime true positives: a raw DeltaChunk pointer parked in a
// field, a pointer derived from a function-local Epoch returned to the
// caller, and epoch state captured by a lambda handed to a thread pool.
namespace rdftx {

class DeltaChunk {
 public:
  int* data();
};

class Epoch {
 public:
  DeltaChunk* chunk();
};

class ThreadPool {
 public:
  template <typename Fn>
  void Submit(Fn fn);
};

class Cache {
 private:
  DeltaChunk* chunk_;  // expect: [epoch-lifetime] raw DeltaChunk pointer stored in field 'chunk_'
};

DeltaChunk* LeakFromLocal() {
  Epoch e;
  return e.chunk();  // expect: [epoch-lifetime] returns a pointer/reference derived from local 'e'
}

void LeakToPool(ThreadPool* pool, Epoch* epoch) {
  pool->Submit([epoch] { epoch->chunk(); });  // expect: [epoch-lifetime] lambda handed to 'Submit' captures 'epoch'
}

}  // namespace rdftx
