// durability interprocedural negatives: helpers that provably sync on
// every acked path — one proven from its body by the sketch fixpoint,
// one asserted with SYNCS_ON_ALL_PATHS on a body-less declaration —
// satisfy the append obligation at their call sites. No findings
// expected.
namespace rdftx {

class Status {
 public:
  bool ok() const;
};

class WalWriter {
 public:
  Status Append(int rec);
  void Sync();
};

#define SYNCS_ON_ALL_PATHS \
  __attribute__((annotate("rdftx::syncs_on_all_paths")))

void AlwaysFlush(WalWriter* wal) { wal->Sync(); }

SYNCS_ON_ALL_PATHS void GroupCommitBarrier(WalWriter* wal);

bool AckViaBody(WalWriter* wal, int rec) {
  Status s = wal->Append(rec);
  if (!s.ok()) {
    return false;
  }
  AlwaysFlush(wal);
  return true;
}

bool AckViaContract(WalWriter* wal, int rec) {
  Status s = wal->Append(rec);
  if (!s.ok()) {
    return false;
  }
  GroupCommitBarrier(wal);
  return true;
}

}  // namespace rdftx
