// Negative fixture for the file-primitive ban: a path ending in
// util/file_io.cc IS the audited mutation path — rename/link/fopen are
// legal here. The analyzer must emit nothing for this file.
extern "C" {
typedef struct FILE_ FILE;
FILE* fopen(const char* path, const char* mode);
int rename(const char* from, const char* to);
int link(const char* from, const char* to);
}

namespace rdftx {
namespace util {

void CommitFile() {
  fopen("tmp", "wb");
  link("tmp", "tmp.bak");
  rename("tmp", "final");
}

}  // namespace util
}  // namespace rdftx
