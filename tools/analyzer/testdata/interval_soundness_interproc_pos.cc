// interval-soundness interprocedural: a helper that builds
// Interval(start, end) straight from its Chronon parameters exports
// the ordering obligation; a caller that cannot order its arguments
// is flagged at the call site, a caller that proves it is not.
namespace rdftx {

using Chronon = unsigned int;

struct Interval {
  Interval(Chronon s, Chronon e);
};

Chronon Opaque();

void Keep(const Interval& iv);

void Store(Chronon from, Chronon to) { Keep(Interval(from, to)); }

void UnprovenCaller() {
  Chronon a = Opaque();
  Chronon b = Opaque();
  Store(a, b);  // expect: [interval-soundness] arguments 0 and 1 flow into Interval(start, end) inside 'rdftx::Store'
}

void ProvenCaller() {
  Chronon a = Opaque();
  Chronon b = Opaque();
  if (a <= b) {
    Store(a, b);
  }
}

}  // namespace rdftx
