// decode-overflow interprocedural: a callee performing unguarded
// arithmetic on a uint64_t parameter (summary: decode_arith_params)
// turns an unbounded decoded argument into a call-site finding; a
// caller that bounds the value first is clean.
namespace rdftx {

using uint64_t = unsigned long long;
using size_t = unsigned long;

uint64_t GetVarint(const unsigned char* data, size_t* pos);

uint64_t AddBias(uint64_t v) { return v + 1000; }

uint64_t Caller(const unsigned char* data, size_t* pos) {
  uint64_t raw = GetVarint(data, pos);
  return AddBias(raw);  // expect: [decode-overflow] decoded value 'raw' flows into 'rdftx::AddBias'
}

uint64_t BoundedCaller(const unsigned char* data, size_t* pos) {
  uint64_t raw = GetVarint(data, pos);
  if (raw > 0xFFFF) {
    return 0;
  }
  return AddBias(raw);
}

}  // namespace rdftx
