// durability true positives: a WAL append that can be acknowledged
// (reach function exit) without a Sync(), and the banned raw mutation
// primitives — rename/link/fopen-for-write — outside util/file_io.cc.
extern "C" {
typedef struct FILE_ FILE;
FILE* fopen(const char* path, const char* mode);
int rename(const char* from, const char* to);
int link(const char* from, const char* to);
}

namespace rdftx {

class Status {
 public:
  bool ok() const;
  void IgnoreError() const;
  static Status OK();
};

namespace storage {

struct WalRecord {};

class WalWriter {
 public:
  Status Append(const WalRecord& r);
  Status Sync();
};

class Store {
 public:
  Status AckWithoutSync(const WalRecord& r) {
    Status st = wal_.Append(r);  // expect: [durability] WAL append can reach function exit without a Sync()
    if (!st.ok()) return st;
    return Status::OK();
  }
  void RawMutations() {
    rename("a", "b");  // expect: [durability] 'rename' outside src/util/file_io.cc
    link("a", "c");  // expect: [durability] 'link' outside src/util/file_io.cc
    fopen("a", "wb");  // expect: [durability] raw fopen for writing
  }

 private:
  WalWriter wal_;
};

}  // namespace storage
}  // namespace rdftx
