// durability near-miss negatives: the same WAL shapes as the positive
// fixture, but disciplined — sync before the ack, an error path pruned
// by its ok() test, an explicit *sync* opt-out branch (an audited
// decision), a tail return that hands the obligation to the caller,
// and a read-only fopen. The analyzer must emit nothing for this file.
extern "C" {
typedef struct FILE_ FILE;
FILE* fopen(const char* path, const char* mode);
}

namespace rdftx {

class Status {
 public:
  bool ok() const;
  void IgnoreError() const;
  static Status OK();
};

namespace storage {

struct WalRecord {};

class WalWriter {
 public:
  Status Append(const WalRecord& r);
  Status Sync();
};

class Store {
 public:
  // The happy path syncs before acknowledging.
  Status SyncedAck(const WalRecord& r) {
    Status st = wal_.Append(r);
    if (!st.ok()) return st;
    st = wal_.Sync();
    if (!st.ok()) return st;
    return Status::OK();
  }
  // A branch that names the sync option is a deliberate, audited
  // opt-out (mirrors LiveStoreOptions::sync_writes).
  Status OptOut(const WalRecord& r, bool sync_writes) {
    Status st = wal_.Append(r);
    if (!st.ok()) return st;
    if (!sync_writes) return Status::OK();
    return wal_.Sync();
  }
  // A tail return passes the status — and the sync obligation — up.
  Status PassThrough(const WalRecord& r) { return wal_.Append(r); }
  // Reading is allowed anywhere.
  FILE* ReadOnly() { return fopen("a", "rb"); }

 private:
  WalWriter wal_;
};

}  // namespace storage
}  // namespace rdftx
