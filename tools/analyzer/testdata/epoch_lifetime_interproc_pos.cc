// epoch-lifetime interprocedural: returning a helper's result is
// dangling only when the helper's summary says its return derives
// from the epoch-class parameter the local was passed through; a
// helper with an unknown body stays silent.
namespace rdftx {

class DeltaChunk {
 public:
  int* data();
};

class Epoch {
 public:
  DeltaChunk* chunk();
};

Epoch* Identity(Epoch* e) { return e; }

Epoch* CloneOnHeap(const Epoch* e);

Epoch* LeakThroughHelper() {
  Epoch local;
  return Identity(&local);  // expect: [epoch-lifetime] returns a pointer/reference derived from local 'local' through 'rdftx::Identity'
}

Epoch* CopiesAreFine() {
  Epoch local;
  return CloneOnHeap(&local);
}

Epoch* ParamsAreTheCallersProblem(Epoch* stable) {
  return Identity(stable);
}

}  // namespace rdftx
