// lock-order interprocedural: calling a function whose transitive
// may-acquire set inverts the declared order — or acquires anything at
// all under a LEAF_MUTEX — is flagged at the call site. Nesting that
// respects the declared order through a call stays silent.
namespace rdftx {
namespace util {
class Mutex {
 public:
  void Lock();
  void Unlock();
};
class MutexLock {
 public:
  explicit MutexLock(Mutex* mu);
  ~MutexLock();
};
}  // namespace util
}  // namespace rdftx

#define ACQUIRED_BEFORE(...) __attribute__((acquired_before(__VA_ARGS__)))
#define ACQUIRED_AFTER(...) __attribute__((acquired_after(__VA_ARGS__)))
#define LEAF_MUTEX __attribute__((annotate("rdftx::leaf_mutex")))

namespace rdftx {

class Store {
 public:
  void LockOuter() { util::MutexLock l(&outer_); }
  void LockInner() { util::MutexLock l(&inner_); }
  void Inverted() {
    util::MutexLock l(&inner_);
    LockOuter();  // expect: [lock-order] calls 'rdftx::Store::LockOuter' while holding 'rdftx::Store::inner_'
  }
  void UnderLeaf() {
    util::MutexLock l(&leaf_);
    LockOuter();  // expect: [lock-order] calls 'rdftx::Store::LockOuter' while holding leaf mutex 'rdftx::Store::leaf_'
  }
  void SafeNesting() {
    util::MutexLock l(&outer_);
    LockInner();
  }

 private:
  util::Mutex outer_ ACQUIRED_BEFORE(inner_);
  util::Mutex inner_ ACQUIRED_AFTER(outer_);
  util::Mutex leaf_ LEAF_MUTEX;
};

}  // namespace rdftx
