#!/usr/bin/env python3
"""Project lint: repo-specific invariants clang-tidy can't express.

Rules (see DESIGN.md "Static analysis & lock discipline"):

  raw-mutex       No std::mutex / std::lock_guard / std::unique_lock /
                  std::scoped_lock / std::condition_variable / shared or
                  recursive mutexes outside src/util/. All locking goes
                  through util::Mutex / util::MutexLock / util::CondVar
                  so it carries thread-safety annotations.
  void-suppress   No `(void)expr;` discards anywhere. A dropped Status /
                  Result is acknowledged with .IgnoreError(); an unused
                  parameter is named [[maybe_unused]].
  nondeterminism  No wall-clock / RNG calls in src/ outside
                  src/util/rng.* and src/util/date.*. Query results and
                  index layout must be a function of the input alone.
  raw-binding-block
                  No direct BindingBlock allocation (`new BindingBlock`,
                  make_unique<BindingBlock>) in src/engine/ outside
                  src/engine/block.h. Blocks come from BlockPool::Acquire
                  and are owned through the RAII BlockHandle, so they are
                  returned to the pool on every path out of an operator.
                  rdftx-analyzer's block-handle check enforces the owning
                  side (an Acquire result must not be discarded).
  nodiscard-meta  src/util/status.h keeps Status and Result<T> marked
                  [[nodiscard]] (the compiler enforces "no Status
                  constructed and dropped" from there).
  ignore-error-justify
                  Every .IgnoreError() call site carries a justification
                  comment — `// status-ignored: <why>` on the same line
                  or the line above. rdftx-analyzer's status-propagation
                  check recognizes the same convention.
  conformance-pairing
                  Every tests/conformance/cases/*.rq query ships with
                  exactly one paired .expected or .error file (and no
                  expectation file is an orphan), so the conformance
                  suite can never silently skip a query.

The textual layer always runs and needs only Python. When clang-query
and a compile_commands.json are available (the CI lint job; any local
clang install), the AST rules in tools/lint/rules/*.qry run as well and
catch spellings the regexes can't (aliases, macro expansion, a Status
temporary discarded through a cast).

With --analyzer BIN (or --analyzer auto), the rdftx-analyzer LibTooling
binary (tools/analyzer/, built by the `analyzer` preset when Clang dev
libraries are present) additionally runs over the compile database and
its findings — lock-order, epoch-lifetime, durability, status,
block-handle, result-unwrap, interval-soundness and decode-overflow
diagnostics — are merged into the lint report. --check=<name>
(repeatable or comma-separated) narrows the analyzer to the named
checks; the textual rules still run. The analyzer keeps a persisted
summary cache next to the compile database so repeat runs reparse only
changed translation units (--analyzer-cache PATH overrides the
location, --analyzer-cache none disables it). Compile-database entries
whose source files no longer exist (a stale compile_commands.json) are
skipped with a notice instead of failing the run; regenerate the
database with cmake to re-cover them.

Usage:
  tools/lint/lint.py [--root DIR] [--compile-commands build/compile_commands.json]
                     [--clang-query BIN] [--require-clang-query]
                     [--analyzer BIN|auto] [--require-analyzer]
                     [--check NAME[,NAME...]] [--analyzer-cache PATH|none]
                     [--json]

Exit status: 0 = clean, 1 = findings, 2 = configuration error (a
requested tool is unavailable, or the analyzer itself failed to parse —
the analyzer binary uses the same 0/1/2 convention). --json writes one
machine-readable JSON object to stdout (notices go to stderr) with the
same exit-status contract.
"""

import argparse
import json
import os
import re
import shutil
import subprocess
import sys

SOURCE_DIRS = ["src", "tests", "bench", "fuzz", "examples"]
SOURCE_EXT = {".cc", ".cpp", ".h", ".hpp"}

# ---------------------------------------------------------------------------
# Textual rules
# ---------------------------------------------------------------------------

RAW_MUTEX_RE = re.compile(
    r"std::(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock|condition_variable|condition_variable_any)\b")

# `(void)` followed by something discardable; `(void*)`, `(void) {`
# (function signatures) and `f(void)` never match.
VOID_SUPPRESS_RE = re.compile(r"\(\s*void\s*\)\s*[A-Za-z_(]")

RAW_BINDING_BLOCK_RE = re.compile(
    r"\bnew\s+(?:engine\s*::\s*)?BindingBlock\b"
    r"|\bmake_unique\s*<\s*(?:engine\s*::\s*)?BindingBlock\b")

NONDETERMINISM_RE = re.compile(
    r"(system_clock|steady_clock|high_resolution_clock)\s*::\s*now\b"
    r"|\bstd::random_device\b"
    r"|\bstd::mt19937(_64)?\b"
    r"|\bstd::minstd_rand0?\b"
    r"|\b(srand|rand|rand_r|drand48|lrand48|random)\s*\("
    r"|\b(time|gettimeofday|clock_gettime|localtime|gmtime)\s*\(")

STRING_OR_CHAR_RE = re.compile(
    r'"(?:\\.|[^"\\])*"' r"|'(?:\\.|[^'\\])*'")
LINE_COMMENT_RE = re.compile(r"//[^\n]*")
BLOCK_COMMENT_RE = re.compile(r"/\*.*?\*/", re.DOTALL)


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving newlines
    so reported line numbers stay true."""

    def blank(m):
        return re.sub(r"[^\n]", " ", m.group(0))

    text = BLOCK_COMMENT_RE.sub(blank, text)
    text = LINE_COMMENT_RE.sub(blank, text)
    text = STRING_OR_CHAR_RE.sub(blank, text)
    return text


def is_under(path, prefix):
    return path == prefix or path.startswith(prefix + os.sep)


def rule_applies(rule, rel):
    rel = rel.replace(os.sep, "/")
    if rule == "raw-mutex":
        # Everywhere except the annotated wrappers' own home.
        return not rel.startswith("src/util/")
    if rule == "void-suppress":
        return True
    if rule == "nondeterminism":
        # Library code only; tests and benches legitimately read clocks.
        if not rel.startswith("src/"):
            return False
        return not re.match(r"src/util/(rng|date)\.(h|cc)$", rel)
    if rule == "raw-binding-block":
        # The pool's own home is the one place allowed to allocate.
        return rel.startswith("src/engine/") and rel != "src/engine/block.h"
    raise ValueError(rule)


def textual_findings(root):
    findings = []
    files = []
    for d in SOURCE_DIRS:
        top = os.path.join(root, d)
        for dirpath, _, names in os.walk(top):
            for name in sorted(names):
                if os.path.splitext(name)[1] in SOURCE_EXT:
                    files.append(os.path.join(dirpath, name))
    for path in sorted(files):
        rel = os.path.relpath(path, root)
        with open(path, encoding="utf-8", errors="replace") as f:
            text = strip_comments_and_strings(f.read())
        for lineno, line in enumerate(text.splitlines(), start=1):
            for rule, regex in (
                ("raw-mutex", RAW_MUTEX_RE),
                ("void-suppress", VOID_SUPPRESS_RE),
                ("nondeterminism", NONDETERMINISM_RE),
                ("raw-binding-block", RAW_BINDING_BLOCK_RE),
            ):
                if rule_applies(rule, rel) and regex.search(line):
                    findings.append(
                        f"{rel}:{lineno}: [{rule}] {line.strip()}")
    return findings


IGNORE_ERROR_RE = re.compile(r"\.\s*IgnoreError\s*\(")
STATUS_IGNORED_COMMENT_RE = re.compile(r"//.*status-ignored:")


def ignore_error_findings(root):
    """IgnoreError() without a `// status-ignored: <why>` justification
    on the same line or the line above. Works on raw text (the comments
    are the point). Skips src/util/status.h, where IgnoreError itself is
    declared."""
    findings = []
    for d in SOURCE_DIRS:
        for dirpath, _, names in os.walk(os.path.join(root, d)):
            for name in sorted(names):
                if os.path.splitext(name)[1] not in SOURCE_EXT:
                    continue
                path = os.path.join(dirpath, name)
                rel = os.path.relpath(path, root).replace(os.sep, "/")
                if rel == "src/util/status.h":
                    continue
                with open(path, encoding="utf-8", errors="replace") as f:
                    lines = f.read().splitlines()
                for lineno, line in enumerate(lines, start=1):
                    if not IGNORE_ERROR_RE.search(line):
                        continue
                    prev = lines[lineno - 2] if lineno >= 2 else ""
                    if STATUS_IGNORED_COMMENT_RE.search(line) or \
                            STATUS_IGNORED_COMMENT_RE.search(prev):
                        continue
                    findings.append(
                        f"{rel}:{lineno}: [ignore-error-justify] IgnoreError() "
                        "without a '// status-ignored: <why>' comment on this "
                        "or the preceding line")
    return findings


def nodiscard_meta_findings(root):
    findings = []
    status_h = os.path.join(root, "src", "util", "status.h")
    try:
        with open(status_h, encoding="utf-8") as f:
            text = f.read()
    except OSError:
        return [f"src/util/status.h: [nodiscard-meta] file missing"]
    for decl in (r"class\s*\[\[nodiscard\]\]\s*Status",
                 r"class\s*\[\[nodiscard\]\]\s*Result"):
        if not re.search(decl, text):
            findings.append(
                "src/util/status.h: [nodiscard-meta] expected declaration "
                f"matching /{decl}/ — Status and Result must stay "
                "[[nodiscard]]")
    return findings


def conformance_pairing_findings(root):
    """Every tests/conformance/cases/<name>.rq must pair with exactly one
    of <name>.expected or <name>.error, and no expectation file may be an
    orphan. The conformance runner enforces the same rule at runtime;
    lint catches it before a test run."""
    findings = []
    cases = os.path.join(root, "tests", "conformance", "cases")
    if not os.path.isdir(cases):
        return findings
    names = sorted(os.listdir(cases))
    stems = {}
    for name in names:
        stem, ext = os.path.splitext(name)
        if ext in (".rq", ".expected", ".error"):
            stems.setdefault(stem, set()).add(ext)
        else:
            findings.append(
                f"tests/conformance/cases/{name}: [conformance-pairing] "
                "unexpected file; only .rq/.expected/.error belong here")
    for stem, exts in sorted(stems.items()):
        if ".rq" not in exts:
            findings.append(
                f"tests/conformance/cases/{stem}: [conformance-pairing] "
                "expectation file without a .rq query")
        elif ".expected" in exts and ".error" in exts:
            findings.append(
                f"tests/conformance/cases/{stem}.rq: [conformance-pairing] "
                "has both .expected and .error; keep exactly one")
        elif ".expected" not in exts and ".error" not in exts:
            findings.append(
                f"tests/conformance/cases/{stem}.rq: [conformance-pairing] "
                "query without a paired .expected or .error file")
    return findings


# ---------------------------------------------------------------------------
# clang-query AST rules
# ---------------------------------------------------------------------------

MATCH_COUNT_RE = re.compile(r"^(\d+) match(?:es)?\.$", re.MULTILINE)

CLANG_QUERY_CANDIDATES = ("clang-query", "clang-query-18", "clang-query-17",
                          "clang-query-16", "clang-query-15",
                          "clang-query-14")

# Memoized probe results: explicit-binary-or-"" -> (path, version) with
# path None when unavailable. Probing runs the binary, so repeated lint
# invocations (check-lint + check-analyzer in one build) only pay once.
_CLANG_QUERY_CACHE = {}


def resolve_clang_query(explicit=None):
    """Resolves the clang-query binary to use and its version string.
    Returns (path, version); path is None when no usable binary exists.
    Results are cached per `explicit` value."""
    key = explicit or ""
    if key in _CLANG_QUERY_CACHE:
        return _CLANG_QUERY_CACHE[key]
    candidates = (explicit,) if explicit else CLANG_QUERY_CANDIDATES
    resolved = (None, None)
    for cand in candidates:
        path = shutil.which(cand)
        if path is None:
            continue
        try:
            proc = subprocess.run([path, "--version"], capture_output=True,
                                  text=True, timeout=30)
            version = (proc.stdout or proc.stderr).strip().splitlines()
            resolved = (path, version[0] if version else "(unknown version)")
        except (OSError, subprocess.TimeoutExpired) as e:
            resolved = (path, f"(--version failed: {e})")
        break
    _CLANG_QUERY_CACHE[key] = resolved
    return resolved


def describe_clang_query_probe(explicit=None):
    """Human-readable account of what resolve_clang_query probed, for
    --require-clang-query failures."""
    path, version = resolve_clang_query(explicit)
    if path is None:
        probed = explicit or ", ".join(CLANG_QUERY_CANDIDATES)
        return f"no clang-query on PATH (probed: {probed})"
    return f"resolved clang-query: {path} [{version}]"


def src_translation_units(root, compile_commands):
    with open(compile_commands, encoding="utf-8") as f:
        db = json.load(f)
    return sorted({
        os.path.normpath(os.path.join(e.get("directory", ""), e["file"]))
        for e in db
        if is_under(os.path.normpath(
            os.path.join(e.get("directory", ""), e["file"])),
            os.path.join(root, "src"))
    })


def clang_query_findings(root, clang_query, compile_commands):
    build_dir = os.path.dirname(os.path.abspath(compile_commands))
    tus = src_translation_units(root, compile_commands)
    if not tus:
        return ["[clang-query] no src/ translation units in "
                f"{compile_commands}"]
    rules_dir = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "rules")
    findings = []
    for qry in sorted(os.listdir(rules_dir)):
        if not qry.endswith(".qry"):
            continue
        cmd = [clang_query, "-p", build_dir,
               "-f", os.path.join(rules_dir, qry)] + tus
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            findings.append(
                f"[clang-query] {qry} failed to run:\n{proc.stderr.strip()}")
            continue
        total = sum(int(n) for n in MATCH_COUNT_RE.findall(proc.stdout))
        if total > 0:
            # Echo the match locations (lines like "path:line:col: note").
            locs = [ln for ln in proc.stdout.splitlines()
                    if re.match(r".+\.(cc|h):\d+:\d+", ln)]
            findings.append(f"[clang-query] {qry}: {total} match(es)")
            findings.extend("  " + ln for ln in locs[:50])
    return findings


# ---------------------------------------------------------------------------
# rdftx-analyzer (tools/analyzer LibTooling binary)
# ---------------------------------------------------------------------------

# Mirrors MakeAllChecks() in tools/analyzer/analyzer_util.cc; the
# analyzer itself also rejects unknown names (exit 2), this just fails
# faster with a friendlier message.
KNOWN_ANALYZER_CHECKS = {
    "lock-order", "epoch-lifetime", "durability", "status",
    "block-handle", "result-unwrap", "interval-soundness",
    "decode-overflow",
}

ANALYZER_BUILD_PATHS = (
    "build-analyzer/tools/analyzer/rdftx-analyzer",
    "build-lint/tools/analyzer/rdftx-analyzer",
    "build/tools/analyzer/rdftx-analyzer",
)


def resolve_analyzer(root, spec):
    """Resolves --analyzer: an explicit path, or 'auto' (PATH, then the
    conventional build directories). Returns None when unavailable."""
    if spec is None:
        return None
    if spec != "auto":
        return spec if os.path.exists(spec) else None
    found = shutil.which("rdftx-analyzer")
    if found:
        return found
    for rel in ANALYZER_BUILD_PATHS:
        cand = os.path.join(root, rel)
        if os.path.exists(cand):
            return cand
    return None


def analyzer_findings(root, analyzer, compile_commands, checks=None,
                      cache="auto", note=print):
    """Runs rdftx-analyzer over every src/ translation unit in the
    compile database and merges its diagnostics into the findings.

    Entries whose source file no longer exists (the database is stale —
    a file was renamed or deleted since cmake last ran) are skipped
    with a notice rather than handed to the analyzer, where they would
    turn into a hard parse error."""
    build_dir = os.path.dirname(os.path.abspath(compile_commands))
    tus = src_translation_units(root, compile_commands)
    if not tus:
        return ["[analyzer] no src/ translation units in "
                f"{compile_commands}"]
    stale = [t for t in tus if not os.path.exists(t)]
    if stale:
        note(f"lint: compile database is stale — {len(stale)} entr"
             f"{'y' if len(stale) == 1 else 'ies'} with no source file "
             "skipped (re-run cmake to refresh compile_commands.json)")
        tus = [t for t in tus if os.path.exists(t)]
    if not tus:
        note("lint: compile database is entirely stale; analyzer checks "
             "skipped (re-run cmake to refresh compile_commands.json)")
        return []
    cmd = [analyzer, "-p", build_dir, "--src-root", root]
    for name in checks or []:
        cmd.append("--check=" + name)
    if cache == "auto":
        cache = os.path.join(build_dir, "rdftx-analyzer-summaries.cache")
    if cache and cache != "none":
        cmd.append("--summary-cache=" + cache)
    cmd += tus
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True)
    except OSError as e:
        return [f"[analyzer] cannot run {analyzer}: {e}"]
    if proc.returncode == 0:
        return []
    if proc.returncode != 1:
        return [f"[analyzer] {analyzer} exited {proc.returncode}:\n"
                f"{proc.stderr.strip()}"]
    return ["[analyzer] " + ln for ln in proc.stdout.splitlines()
            if ln.strip()]


# Finding lines mostly follow "<file>:<line>[:<col>]: [<rule>] <msg>";
# --json parses that shape and falls back to the raw text otherwise.
FINDING_SHAPE_RE = re.compile(
    r"^(?:\[analyzer\] )?(?P<file>[^:\s][^:]*):(?P<line>\d+)"
    r"(?::(?P<col>\d+))?: \[(?P<rule>[a-z-]+)\] (?P<msg>.*)$")


def finding_to_json(text):
    m = FINDING_SHAPE_RE.match(text)
    if m is None:
        return {"raw": text}
    obj = {
        "file": m.group("file"),
        "line": int(m.group("line")),
        "rule": m.group("rule"),
        "message": m.group("msg"),
        "raw": text,
    }
    if m.group("col") is not None:
        obj["col"] = int(m.group("col"))
    if text.startswith("[analyzer] "):
        obj["source"] = "analyzer"
    return obj


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=None,
                    help="repo root (default: two levels above this script)")
    ap.add_argument("--compile-commands", default=None,
                    help="compile_commands.json for the AST rules")
    ap.add_argument("--clang-query", default=None,
                    help="clang-query binary (default: search PATH)")
    ap.add_argument("--require-clang-query", action="store_true",
                    help="fail instead of skipping when clang-query or the "
                         "compile database is unavailable (CI mode)")
    ap.add_argument("--analyzer", default=None, metavar="BIN",
                    help="also run the rdftx-analyzer LibTooling binary "
                         "(path, or 'auto' to search PATH and the "
                         "conventional build dirs) and merge its findings")
    ap.add_argument("--require-analyzer", action="store_true",
                    help="fail instead of skipping when rdftx-analyzer or "
                         "the compile database is unavailable (CI mode)")
    ap.add_argument("--check", action="append", default=None, metavar="NAME",
                    help="narrow the analyzer to the named check "
                         "(repeatable or comma-separated); one of: "
                         + ", ".join(sorted(KNOWN_ANALYZER_CHECKS)))
    ap.add_argument("--analyzer-cache", default="auto", metavar="PATH",
                    help="analyzer summary-cache file ('auto': next to the "
                         "compile database; 'none': disable)")
    ap.add_argument("--json", action="store_true",
                    help="emit findings as one JSON object on stdout "
                         "(notices move to stderr); exit status unchanged")
    args = ap.parse_args()

    def note(msg):
        print(msg, file=sys.stderr if args.json else sys.stdout)

    checks = []
    for spec in args.check or []:
        checks += [c for c in spec.split(",") if c]
    unknown = sorted(set(checks) - KNOWN_ANALYZER_CHECKS)
    if unknown:
        print("lint: unknown --check name(s): " + ", ".join(unknown)
              + " (known: " + ", ".join(sorted(KNOWN_ANALYZER_CHECKS)) + ")",
              file=sys.stderr)
        return 2

    root = args.root or os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))

    findings = textual_findings(root)
    findings += nodiscard_meta_findings(root)
    findings += ignore_error_findings(root)
    findings += conformance_pairing_findings(root)

    have_db = args.compile_commands and os.path.exists(args.compile_commands)
    clang_query, _ = resolve_clang_query(args.clang_query)
    if clang_query and have_db:
        findings += clang_query_findings(root, clang_query,
                                         args.compile_commands)
    elif args.require_clang_query:
        reasons = [describe_clang_query_probe(args.clang_query)]
        if not have_db:
            reasons.append("compile database unavailable: "
                           f"{args.compile_commands or '(not specified)'}")
        print("lint: --require-clang-query was passed but the AST rules "
              "cannot run:\n  " + "\n  ".join(reasons), file=sys.stderr)
        return 2
    else:
        note("lint: clang-query or compile database unavailable; "
             "AST rules skipped (textual rules still enforced)")

    analyzer = resolve_analyzer(root, args.analyzer or
                                ("auto" if args.require_analyzer else None))
    if analyzer and have_db:
        findings += analyzer_findings(root, analyzer, args.compile_commands,
                                      checks=checks,
                                      cache=args.analyzer_cache, note=note)
    elif args.require_analyzer:
        reasons = []
        if not analyzer:
            reasons.append("rdftx-analyzer not found (searched PATH and "
                           + ", ".join(ANALYZER_BUILD_PATHS) + ")"
                           if (args.analyzer in (None, "auto"))
                           else f"rdftx-analyzer not found at {args.analyzer}")
        if not have_db:
            reasons.append("compile database unavailable: "
                           f"{args.compile_commands or '(not specified)'}")
        print("lint: --require-analyzer was passed but rdftx-analyzer "
              "cannot run:\n  " + "\n  ".join(reasons), file=sys.stderr)
        return 2
    elif args.analyzer:
        note("lint: rdftx-analyzer or compile database unavailable; "
             "analyzer checks skipped")

    if args.json:
        print(json.dumps({
            "status": "findings" if findings else "clean",
            "count": len(findings),
            "findings": [finding_to_json(f) for f in findings],
        }, indent=2))
        return 1 if findings else 0
    if findings:
        print(f"lint: {len(findings)} finding(s):")
        for f in findings:
            print("  " + f)
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
